//! The Ranger query-plan DSL and its execution runtime.
//!
//! In the paper, Ranger's retrieval LLM emits executable Python against the
//! documented schema and a runtime executes it over `loaded_data` (Fig. 3).
//! The reproduction keeps both halves but replaces Python with a small,
//! sandboxed plan language: [`Plan`] is "the generated code", [`Plan::run`]
//! is the execution runtime, and [`Plan::render_code`] prints the
//! Python-equivalent for display and for the Code Generation benchmark
//! category.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use cachemind_lang::context::Fact;
use cachemind_sim::addr::{Address, Pc};
use cachemind_sim::scenario::ScenarioSelector;
use cachemind_tracedb::database::TraceId;
use cachemind_tracedb::filter::Predicate;
use cachemind_tracedb::meta;
use cachemind_tracedb::stats::CacheStatisticalExpert;
use cachemind_tracedb::store::TraceStore;

/// Numeric columns a plan may aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggColumn {
    /// `accessed_address_reuse_distance_numeric`
    AccessedReuse,
    /// `evicted_address_reuse_distance_numeric`
    EvictedReuse,
    /// `accessed_address_recency_numeric`
    Recency,
}

impl AggColumn {
    /// The schema column name.
    pub const fn column_name(self) -> &'static str {
        match self {
            AggColumn::AccessedReuse => "accessed_address_reuse_distance_numeric",
            AggColumn::EvictedReuse => "evicted_address_reuse_distance_numeric",
            AggColumn::Recency => "accessed_address_recency_numeric",
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// Arithmetic mean.
    Mean,
    /// Sum.
    Sum,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Population standard deviation.
    Std,
}

impl AggFunc {
    fn apply(self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        Some(match self {
            AggFunc::Mean => values.iter().sum::<f64>() / n,
            AggFunc::Sum => values.iter().sum(),
            AggFunc::Max => values.iter().copied().fold(f64::MIN, f64::max),
            AggFunc::Min => values.iter().copied().fold(f64::MAX, f64::min),
            AggFunc::Std => {
                let mean = values.iter().sum::<f64>() / n;
                (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n).sqrt()
            }
        })
    }

    const fn python_name(self) -> &'static str {
        match self {
            AggFunc::Mean => "mean",
            AggFunc::Sum => "sum",
            AggFunc::Max => "max",
            AggFunc::Min => "min",
            AggFunc::Std => "std",
        }
    }
}

/// The axis a [`Plan::BatchRank`] ranks over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankAxis {
    /// Rank every policy for one anchored workload
    /// ([`Plan::CompareIpcAcrossPolicies`] / [`Plan::CompareAcrossPolicies`]).
    Policies,
    /// Rank every workload under one anchored policy
    /// ([`Plan::CompareIpcAcrossWorkloads`] / [`Plan::CompareAcrossWorkloads`]).
    Workloads,
}

/// The metric a [`Plan::BatchRank`] extracts per ranked entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankMetric {
    /// Estimated IPC from the metadata's scenario sentence.
    Ipc,
    /// Miss-rate percent (whole trace from metadata, or per-PC from stats).
    MissRate,
}

/// Errors from plan execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanError {
    /// The referenced trace key does not exist.
    UnknownTrace(String),
    /// The plan's filters matched no rows.
    EmptyResult,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTrace(key) => write!(f, "unknown trace key {key:?}"),
            PlanError::EmptyResult => write!(f, "plan filters matched no rows"),
        }
    }
}

impl std::error::Error for PlanError {}

/// An executable retrieval plan — Ranger's "generated code".
///
/// Plans name their `(workload, policy)` pair explicitly (resolved slots,
/// not filters); *which machine's and prefetcher's* trace a plan reads is
/// decided at execution time by the [`ScenarioSelector`] scope handed to
/// [`Plan::run_scoped`], which threads every trace lookup through
/// [`TraceStore::get_scoped`] — so one plan answers from whichever
/// qualified entry (`<workload>_evictions_<policy>[@machine][+prefetcher]`)
/// the scope picks. [`Plan::run`] is the unscoped wrapper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Plan {
    /// Look up the outcome of a `{workload, policy, pc?, addr?}` tuple.
    Lookup {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
        /// PC filter.
        pc: Option<Pc>,
        /// Byte-address filter.
        address: Option<Address>,
    },
    /// Miss rate of a PC within one trace.
    PcMissRate {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
        /// The PC.
        pc: Pc,
    },
    /// Whole-workload miss rate from the metadata string.
    WorkloadMissRate {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
    },
    /// Whole-workload estimated IPC (and the machine it was measured on)
    /// from the metadata's scenario sentence.
    WorkloadIpc {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
    },
    /// Per-policy estimated IPC values for ranking.
    CompareIpcAcrossPolicies {
        /// Workload name.
        workload: String,
    },
    /// Per-workload estimated IPC values for ranking under one policy.
    CompareIpcAcrossWorkloads {
        /// Policy name.
        policy: String,
    },
    /// Per-policy metric values for ranking.
    CompareAcrossPolicies {
        /// Workload name.
        workload: String,
        /// Optional PC scope.
        pc: Option<Pc>,
    },
    /// Per-workload metric values for ranking under one policy.
    CompareAcrossWorkloads {
        /// Policy name.
        policy: String,
    },
    /// Count rows matching the filters (full-frame iteration).
    CountRows {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
        /// PC filter.
        pc: Option<Pc>,
        /// Byte-address filter.
        address: Option<Address>,
        /// Restrict to misses.
        misses_only: bool,
    },
    /// Aggregate a numeric column over matching rows (full-frame).
    Aggregate {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
        /// PC filter.
        pc: Option<Pc>,
        /// Column to aggregate.
        column: AggColumn,
        /// Aggregate function.
        func: AggFunc,
    },
    /// A per-PC statistics table (optionally sorted/limited) — the
    /// workhorse of the insight chat sessions.
    PerPcTable {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
        /// Keep only the `limit` top entries by miss count (0 = all).
        limit: usize,
    },
    /// A per-set hit-rate table (the set-hotness use case).
    PerSetTable {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
    },
    /// A reasoning bundle: stats plus descriptive snippets for a PC.
    ContextBundle {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
        /// Optional PC focus.
        pc: Option<Pc>,
    },
    /// All unique PCs in a trace, first-seen order (the Figure 10/12 chat
    /// opener: "List all unique PCs in the trace").
    UniquePcs {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
    },
    /// All unique cache sets in a trace, ascending (Figure 13).
    UniqueSets {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
    },
    /// Group PCs by reuse-distance variability (the Figure 10 ETR-variance
    /// clustering): low/medium/high coefficient-of-variation tiers.
    GroupPcsByReuseVariance {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
    },
    /// The five hottest and five coldest sets by hit rate (Figure 13).
    HotColdSets {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
    },
    /// Optimizer-produced collapse of [`Plan::Lookup`]: the filter-then-
    /// take-first chain becomes a single first-match scan that stops at the
    /// first qualifying row instead of materializing every match, with the
    /// scenario scope pushed down (baked in) at optimize time. Emitted only
    /// by [`optimize`](crate::optimize::optimize), never compiled directly.
    TakeFirst {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
        /// PC filter.
        pc: Option<Pc>,
        /// Byte-address filter.
        address: Option<Address>,
        /// The machine scope baked in by the optimizer; execution ignores
        /// the runtime scope and resolves against this one.
        scope: ScenarioSelector,
    },
    /// Optimizer-produced collapse of a filter-free [`Plan::CountRows`]:
    /// the full-frame predicate walk becomes a direct frame-length read.
    TraceLen {
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
        /// The machine scope baked in by the optimizer.
        scope: ScenarioSelector,
    },
    /// Optimizer-produced hoist of the four multi-step `Compare*` plans:
    /// the per-axis-value scoped lookups (each a full [`TraceStore::
    /// get_scoped`] resolution) are batched into ONE scoped scan whose
    /// entries are memoized by trace key, then each axis value resolves
    /// against the memo with `get_scoped`'s exact precedence.
    BatchRank {
        /// Which axis is ranked.
        axis: RankAxis,
        /// The pinned value on the other axis (workload name when ranking
        /// policies, policy name when ranking workloads).
        anchor: String,
        /// The metric extracted per entry.
        metric: RankMetric,
        /// Optional PC scope (miss-rate ranking only).
        pc: Option<Pc>,
        /// The machine scope baked in by the optimizer.
        scope: ScenarioSelector,
    },
}

impl Plan {
    fn entry<'d>(
        db: &'d dyn TraceStore,
        workload: &str,
        policy: &str,
        scope: &ScenarioSelector,
    ) -> Result<&'d cachemind_tracedb::database::TraceEntry, PlanError> {
        let id = TraceId::new(workload, policy);
        db.get_scoped_resolved(&id, scope).ok_or_else(|| PlanError::UnknownTrace(id.key()))
    }

    /// Executes the plan against the database with no scenario scope —
    /// [`Plan::run_scoped`] over the unscoped selector, byte-identical to
    /// the pre-selector runtime.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::UnknownTrace`] for a bad key and
    /// [`PlanError::EmptyResult`] when the filters matched nothing — the
    /// runtime signal Ranger turns into a premise check.
    pub fn run(&self, db: &dyn TraceStore) -> Result<Vec<Fact>, PlanError> {
        self.run_scoped(db, &ScenarioSelector::all())
    }

    /// Executes the plan against the database, scoping every trace lookup
    /// to the selector's machine/prefetcher half: on a multi-machine
    /// store, the same plan answers from whichever machine's traces the
    /// scope picks (the workload/policy the plan itself names are already
    /// resolved slots and are not re-filtered).
    ///
    /// # Errors
    ///
    /// See [`Plan::run`].
    pub fn run_scoped(
        &self,
        db: &dyn TraceStore,
        scope: &ScenarioSelector,
    ) -> Result<Vec<Fact>, PlanError> {
        // Resolve the machine scope ONCE per run. Multi-step plans
        // (compares, rankings) used to re-derive it inside every
        // `get_scoped` call — one clone of both selector strings per
        // branch; now every branch shares this resolution.
        let resolved = scope.machine_scope();
        self.run_resolved(db, &resolved)
    }

    /// [`Plan::run_scoped`] over an already-resolved machine scope (see
    /// [`TraceStore::get_scoped_resolved`] for the precondition).
    fn run_resolved(
        &self,
        db: &dyn TraceStore,
        scope: &ScenarioSelector,
    ) -> Result<Vec<Fact>, PlanError> {
        let expert = CacheStatisticalExpert::new();
        match self {
            Plan::Lookup { workload, policy, pc, address } => {
                let entry = Self::entry(db, workload, policy, scope)?;
                let mut pred = Predicate::True;
                if let Some(pc) = pc {
                    pred = pred.and(Predicate::PcEquals(*pc));
                }
                if let Some(addr) = address {
                    pred = pred.and(Predicate::AddressEquals(*addr));
                }
                let rows = entry.frame.filter(&pred);
                let row = rows.first().ok_or(PlanError::EmptyResult)?;
                Ok(vec![Fact::Outcome {
                    pc: Some(row.pc),
                    address: Some(row.address),
                    workload: workload.clone(),
                    policy: policy.clone(),
                    is_miss: row.is_miss,
                    evicted: row.evicted_address.map(|e| (e, row.evicted_reuse_distance)),
                    inserted_reuse: row.accessed_reuse_distance,
                }])
            }
            Plan::PcMissRate { workload, policy, pc } => {
                let entry = Self::entry(db, workload, policy, scope)?;
                let stats = expert.pc_stats(&entry.frame, *pc).ok_or(PlanError::EmptyResult)?;
                Ok(vec![Fact::MissRate {
                    scope: format!("PC {pc}"),
                    percent: stats.miss_rate() * 100.0,
                    accesses: stats.accesses,
                }])
            }
            Plan::WorkloadMissRate { workload, policy } => {
                let entry = Self::entry(db, workload, policy, scope)?;
                let rate = meta::extract_percent(&entry.metadata, "miss rate")
                    .ok_or(PlanError::EmptyResult)?;
                Ok(vec![Fact::MissRate {
                    scope: format!("workload {workload}"),
                    percent: rate,
                    accesses: meta::extract_count(&entry.metadata, "total accesses").unwrap_or(0),
                }])
            }
            Plan::WorkloadIpc { workload, policy } => {
                let entry = Self::entry(db, workload, policy, scope)?;
                let ipc = meta::extract_ipc(&entry.metadata).ok_or(PlanError::EmptyResult)?;
                Ok(vec![Fact::NumericValue {
                    what: meta::ipc_citation(workload, policy, &entry.metadata),
                    value: ipc,
                    complete: true,
                }])
            }
            Plan::CompareIpcAcrossPolicies { workload } => {
                let mut facts = Vec::new();
                for policy in db.policies() {
                    let Ok(entry) = Self::entry(db, workload, &policy, scope) else { continue };
                    if let Some(ipc) = meta::extract_ipc(&entry.metadata) {
                        facts.push(Fact::PolicyValue {
                            policy,
                            metric: format!(
                                "estimated IPC{}",
                                meta::scenario_citation_suffix(&entry.metadata)
                            ),
                            value: ipc,
                        });
                    }
                }
                if facts.is_empty() {
                    Err(PlanError::EmptyResult)
                } else {
                    Ok(facts)
                }
            }
            Plan::CompareIpcAcrossWorkloads { policy } => {
                let mut facts = Vec::new();
                for w in db.workloads() {
                    let Ok(entry) = Self::entry(db, &w, policy, scope) else { continue };
                    if let Some(ipc) = meta::extract_ipc(&entry.metadata) {
                        facts.push(Fact::PolicyValue {
                            policy: w,
                            metric: format!(
                                "estimated IPC under {policy}{}",
                                meta::scenario_citation_suffix(&entry.metadata)
                            ),
                            value: ipc,
                        });
                    }
                }
                if facts.is_empty() {
                    Err(PlanError::EmptyResult)
                } else {
                    Ok(facts)
                }
            }
            Plan::CompareAcrossPolicies { workload, pc } => {
                let mut facts = Vec::new();
                for policy in db.policies() {
                    let Ok(entry) = Self::entry(db, workload, &policy, scope) else { continue };
                    let value = match pc {
                        Some(pc) => {
                            expert.pc_stats(&entry.frame, *pc).map(|s| s.miss_rate() * 100.0)
                        }
                        None => meta::extract_percent(&entry.metadata, "miss rate"),
                    };
                    if let Some(v) = value {
                        facts.push(Fact::PolicyValue {
                            policy,
                            metric: "miss rate %".to_owned(),
                            value: v,
                        });
                    }
                }
                if facts.is_empty() {
                    Err(PlanError::EmptyResult)
                } else {
                    Ok(facts)
                }
            }
            Plan::CompareAcrossWorkloads { policy } => {
                let mut facts = Vec::new();
                for w in db.workloads() {
                    let Ok(entry) = Self::entry(db, &w, policy, scope) else { continue };
                    if let Some(rate) = meta::extract_percent(&entry.metadata, "miss rate") {
                        facts.push(Fact::PolicyValue {
                            policy: w,
                            metric: format!("miss rate % under {policy}"),
                            value: rate,
                        });
                    }
                }
                if facts.is_empty() {
                    Err(PlanError::EmptyResult)
                } else {
                    Ok(facts)
                }
            }
            Plan::CountRows { workload, policy, pc, address, misses_only } => {
                let entry = Self::entry(db, workload, policy, scope)?;
                let mut pred = Predicate::True;
                if let Some(pc) = pc {
                    pred = pred.and(Predicate::PcEquals(*pc));
                }
                if let Some(addr) = address {
                    pred = pred.and(Predicate::AddressEquals(*addr));
                }
                if *misses_only {
                    pred = pred.and(Predicate::IsMiss(true));
                }
                let count = entry.frame.count(&pred);
                if count == 0 {
                    return Err(PlanError::EmptyResult);
                }
                Ok(vec![Fact::CountValue {
                    what: format!("matching accesses in {workload}_{policy}"),
                    value: count as u64,
                    complete: true,
                }])
            }
            Plan::Aggregate { workload, policy, pc, column, func } => {
                let entry = Self::entry(db, workload, policy, scope)?;
                let mut pred = Predicate::True;
                if let Some(pc) = pc {
                    pred = pred.and(Predicate::PcEquals(*pc));
                }
                let values: Vec<f64> = entry
                    .frame
                    .filter(&pred)
                    .into_iter()
                    .filter_map(|r| match column {
                        AggColumn::AccessedReuse => r.accessed_reuse_distance.map(|d| d as f64),
                        AggColumn::EvictedReuse => r.evicted_reuse_distance.map(|d| d as f64),
                        AggColumn::Recency => r.recency.map(|d| d as f64),
                    })
                    .collect();
                let value = func.apply(&values).ok_or(PlanError::EmptyResult)?;
                Ok(vec![Fact::NumericValue {
                    what: format!("{} of {}", func.python_name(), column.column_name()),
                    value,
                    complete: true,
                }])
            }
            Plan::PerPcTable { workload, policy, limit } => {
                let entry = Self::entry(db, workload, policy, scope)?;
                let mut stats = expert.per_pc(&entry.frame);
                stats.sort_by_key(|s| std::cmp::Reverse(s.misses));
                if *limit > 0 {
                    stats.truncate(*limit);
                }
                if stats.is_empty() {
                    return Err(PlanError::EmptyResult);
                }
                let text = stats
                    .iter()
                    .map(|s| {
                        format!(
                            "{}: accesses={} misses={} miss_rate={:.2}% mean_reuse={:.1} \
                             reuse_stddev={:.1}",
                            s.pc,
                            s.accesses,
                            s.misses,
                            s.miss_rate() * 100.0,
                            s.mean_accessed_reuse.unwrap_or(f64::NAN),
                            s.reuse_stddev.unwrap_or(f64::NAN),
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
                Ok(vec![Fact::Snippet {
                    title: format!("Per-PC table ({workload}/{policy})"),
                    text,
                }])
            }
            Plan::PerSetTable { workload, policy } => {
                let entry = Self::entry(db, workload, policy, scope)?;
                let sets = expert.per_set(&entry.frame);
                if sets.is_empty() {
                    return Err(PlanError::EmptyResult);
                }
                let text = sets
                    .iter()
                    .map(|s| {
                        format!(
                            "set {}: accesses={} hits={} hit_rate={:.2}%",
                            s.set,
                            s.accesses,
                            s.hits,
                            s.hit_rate() * 100.0
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
                Ok(vec![Fact::Snippet {
                    title: format!("Per-set table ({workload}/{policy})"),
                    text,
                }])
            }
            Plan::ContextBundle { workload, policy, pc } => {
                let entry = Self::entry(db, workload, policy, scope)?;
                let mut facts = vec![Fact::Snippet {
                    title: "Trace metadata".to_owned(),
                    text: entry.metadata.clone(),
                }];
                if let Some(pc) = pc {
                    if let Some(stats) = expert.pc_stats(&entry.frame, *pc) {
                        facts.push(Fact::MissRate {
                            scope: format!("PC {pc}"),
                            percent: stats.miss_rate() * 100.0,
                            accesses: stats.accesses,
                        });
                    }
                }
                Ok(facts)
            }
            Plan::UniquePcs { workload, policy } => {
                let entry = Self::entry(db, workload, policy, scope)?;
                let pcs = entry.frame.unique_pcs();
                if pcs.is_empty() {
                    return Err(PlanError::EmptyResult);
                }
                let text = pcs.iter().map(|p| format!("{p}")).collect::<Vec<_>>().join(", ");
                Ok(vec![
                    Fact::CountValue {
                        what: format!("unique PCs in {workload}_{policy}"),
                        value: pcs.len() as u64,
                        complete: true,
                    },
                    Fact::Snippet { title: "Unique PCs".to_owned(), text },
                ])
            }
            Plan::UniqueSets { workload, policy } => {
                let entry = Self::entry(db, workload, policy, scope)?;
                let sets = entry.frame.unique_sets();
                if sets.is_empty() {
                    return Err(PlanError::EmptyResult);
                }
                let text = sets.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ");
                Ok(vec![
                    Fact::CountValue {
                        what: format!("unique cache sets in {workload}_{policy}"),
                        value: sets.len() as u64,
                        complete: true,
                    },
                    Fact::Snippet { title: "Unique cache sets (ascending)".to_owned(), text },
                ])
            }
            Plan::GroupPcsByReuseVariance { workload, policy } => {
                let entry = Self::entry(db, workload, policy, scope)?;
                let mut scored: Vec<(Pc, f64)> = expert
                    .per_pc(&entry.frame)
                    .into_iter()
                    .filter(|s| s.accesses >= 10)
                    .filter_map(|s| s.reuse_cv().map(|cv| (s.pc, cv)))
                    .collect();
                if scored.is_empty() {
                    return Err(PlanError::EmptyResult);
                }
                scored.sort_by(|a, b| a.1.total_cmp(&b.1));
                let third = (scored.len() / 3).max(1);
                let render = |slice: &[(Pc, f64)]| {
                    slice.iter().map(|(p, _)| format!("{p}")).collect::<Vec<_>>().join(", ")
                };
                let low = render(&scored[..third.min(scored.len())]);
                let mid = render(&scored[third.min(scored.len())..(2 * third).min(scored.len())]);
                let high = render(&scored[(2 * third).min(scored.len())..]);
                Ok(vec![Fact::Snippet {
                    title: format!("PCs grouped by reuse-distance variance ({workload}/{policy})"),
                    text: format!("LowVar: {{{low}}}\nMedVar: {{{mid}}}\nHighVar: {{{high}}}"),
                }])
            }
            Plan::HotColdSets { workload, policy } => {
                let entry = Self::entry(db, workload, policy, scope)?;
                let mut sets = expert.per_set(&entry.frame);
                sets.retain(|s| s.accesses >= 10);
                if sets.is_empty() {
                    return Err(PlanError::EmptyResult);
                }
                sets.sort_by(|a, b| b.hit_rate().total_cmp(&a.hit_rate()).then(a.set.cmp(&b.set)));
                let hot: Vec<usize> = sets.iter().take(5).map(|s| s.set).collect();
                let cold: Vec<usize> = sets.iter().rev().take(5).map(|s| s.set).collect();
                Ok(vec![Fact::Snippet {
                    title: format!("Hot/cold sets ({workload}/{policy})"),
                    text: format!("Hot Sets = {hot:?}, Cold Sets = {cold:?}"),
                }])
            }
            Plan::TakeFirst { workload, policy, pc, address, scope: baked } => {
                let entry = Self::entry(db, workload, policy, baked)?;
                let row = entry
                    .frame
                    .rows()
                    .iter()
                    .find(|r| {
                        pc.is_none_or(|p| r.pc == p) && address.is_none_or(|a| r.address == a)
                    })
                    .ok_or(PlanError::EmptyResult)?;
                Ok(vec![Fact::Outcome {
                    pc: Some(row.pc),
                    address: Some(row.address),
                    workload: workload.clone(),
                    policy: policy.clone(),
                    is_miss: row.is_miss,
                    evicted: row.evicted_address.map(|e| (e, row.evicted_reuse_distance)),
                    inserted_reuse: row.accessed_reuse_distance,
                }])
            }
            Plan::TraceLen { workload, policy, scope: baked } => {
                let entry = Self::entry(db, workload, policy, baked)?;
                let count = entry.frame.rows().len();
                if count == 0 {
                    return Err(PlanError::EmptyResult);
                }
                Ok(vec![Fact::CountValue {
                    what: format!("matching accesses in {workload}_{policy}"),
                    value: count as u64,
                    complete: true,
                }])
            }
            Plan::BatchRank { axis, anchor, metric, pc, scope: baked } => {
                // ONE scoped scan replaces the per-axis-value `get_scoped`
                // resolutions of the naive compare plans. The scan pins the
                // anchored slot, memoizes every in-scope entry by trace key,
                // and records the first entry of each axis group (ascending
                // key order) — exactly the set and order `get_scoped` would
                // consider per value, so resolution below can mirror its
                // precedence byte for byte.
                let mut pinned = baked.clone();
                match axis {
                    RankAxis::Policies => pinned.workload = Some(anchor.clone()),
                    RankAxis::Workloads => pinned.policy = Some(anchor.clone()),
                }
                let mut by_key: BTreeMap<String, &cachemind_tracedb::database::TraceEntry> =
                    BTreeMap::new();
                let mut groups: BTreeMap<&str, &cachemind_tracedb::database::TraceEntry> =
                    BTreeMap::new();
                for e in db.select(&pinned) {
                    by_key.insert(e.id.key(), e);
                    let group = match axis {
                        RankAxis::Policies => e.id.policy.as_str(),
                        RankAxis::Workloads => e.id.workload.as_str(),
                    };
                    groups.entry(group).or_insert(e);
                }
                // get_scoped's qualified-key candidate shapes, hoisted out
                // of the loop (they depend only on the scope).
                let machine = baked.machine.as_deref();
                let prefetcher = baked.prefetcher.as_deref().filter(|p| *p != "none");
                let pairs = [(machine, prefetcher), (machine, None), (None, prefetcher)];
                let mut facts = Vec::new();
                for (group, first) in &groups {
                    let (w, p) = match axis {
                        RankAxis::Policies => (anchor.as_str(), *group),
                        RankAxis::Workloads => (*group, anchor.as_str()),
                    };
                    // Precedence mirror: unqualified entry, then the
                    // qualified key shapes, then first-in-scope fallback.
                    let id = TraceId::new(w, p);
                    let mut entry = by_key.get(&id.key()).copied();
                    if entry.is_none() {
                        for (i, &(m, pf)) in pairs.iter().enumerate() {
                            if (m.is_none() && pf.is_none()) || pairs[..i].contains(&(m, pf)) {
                                continue;
                            }
                            let candidate = TraceId::qualified(w, p, m, pf);
                            if candidate == id {
                                continue;
                            }
                            if let Some(e) = by_key.get(&candidate.key()) {
                                entry = Some(*e);
                                break;
                            }
                        }
                    }
                    let entry = entry.unwrap_or(*first);
                    let value = match metric {
                        RankMetric::Ipc => meta::extract_ipc(&entry.metadata),
                        RankMetric::MissRate => match pc {
                            Some(pc) => {
                                expert.pc_stats(&entry.frame, *pc).map(|s| s.miss_rate() * 100.0)
                            }
                            None => meta::extract_percent(&entry.metadata, "miss rate"),
                        },
                    };
                    let Some(value) = value else { continue };
                    let metric_name = match (*metric, *axis) {
                        (RankMetric::Ipc, RankAxis::Policies) => format!(
                            "estimated IPC{}",
                            meta::scenario_citation_suffix(&entry.metadata)
                        ),
                        (RankMetric::Ipc, RankAxis::Workloads) => format!(
                            "estimated IPC under {anchor}{}",
                            meta::scenario_citation_suffix(&entry.metadata)
                        ),
                        (RankMetric::MissRate, RankAxis::Policies) => "miss rate %".to_owned(),
                        (RankMetric::MissRate, RankAxis::Workloads) => {
                            format!("miss rate % under {anchor}")
                        }
                    };
                    facts.push(Fact::PolicyValue {
                        policy: group.to_string(),
                        metric: metric_name,
                        value,
                    });
                }
                if facts.is_empty() {
                    Err(PlanError::EmptyResult)
                } else {
                    Ok(facts)
                }
            }
        }
    }

    /// Renders the Python-equivalent of the plan (the paper's generated
    /// code), honouring the Figure 3 output rules (`result = "..."`).
    pub fn render_code(&self) -> String {
        match self {
            Plan::Lookup { workload, policy, pc, address } => {
                let mut filters = String::new();
                if let Some(pc) = pc {
                    filters.push_str(&format!("df = df[df.program_counter == {pc}]\n"));
                }
                if let Some(addr) = address {
                    filters.push_str(&format!("df = df[df.memory_address == {addr}]\n"));
                }
                format!(
                    "df = loaded_data[\"{workload}_evictions_{policy}\"][\"data_frame\"]\n\
                     {filters}row = df.iloc[0]\n\
                     result = f\"Cache result: {{row.evict}}\""
                )
            }
            Plan::PcMissRate { workload, policy, pc } => format!(
                "df = loaded_data[\"{workload}_evictions_{policy}\"][\"data_frame\"]\n\
                 df = df[df.program_counter == {pc}]\n\
                 result = f\"The miss rate for PC {pc} is {{df.is_miss.mean()*100:.2f}}%.\""
            ),
            Plan::WorkloadMissRate { workload, policy } => format!(
                "meta = loaded_data[\"{workload}_evictions_{policy}\"][\"metadata\"]\n\
                 result = re.search(r\"([0-9.]+)% miss rate\", meta).group(1)"
            ),
            Plan::WorkloadIpc { workload, policy } => format!(
                "meta = loaded_data[\"{workload}_evictions_{policy}\"][\"metadata\"]\n\
                 result = re.search(r\"estimated IPC of ([0-9.]+)\", meta).group(1)"
            ),
            Plan::CompareIpcAcrossPolicies { workload } => format!(
                "ipcs = {{}}\nfor key in loaded_data:\n    if key.startswith(\"{workload}\"):\n        \
                 meta = loaded_data[key][\"metadata\"]\n        \
                 ipcs[key] = re.search(r\"estimated IPC of ([0-9.]+)\", meta).group(1)\n\
                 result = str(sorted(ipcs.items(), key=lambda kv: kv[1], reverse=True))"
            ),
            Plan::CompareIpcAcrossWorkloads { policy } => format!(
                "ipcs = {{}}\nfor key in loaded_data:\n    if key.endswith(\"{policy}\"):\n        \
                 meta = loaded_data[key][\"metadata\"]\n        \
                 ipcs[key] = re.search(r\"estimated IPC of ([0-9.]+)\", meta).group(1)\n\
                 result = str(sorted(ipcs.items(), key=lambda kv: kv[1], reverse=True))"
            ),
            Plan::CompareAcrossPolicies { workload, pc } => format!(
                "rates = {{}}\nfor key in loaded_data:\n    if key.startswith(\"{workload}\"):\n        \
                 df = loaded_data[key][\"data_frame\"]\n{}        rates[key] = df.is_miss.mean()\n\
                 result = str(sorted(rates.items(), key=lambda kv: kv[1]))",
                pc.map(|p| format!("        df = df[df.program_counter == {p}]\n"))
                    .unwrap_or_default()
            ),
            Plan::CompareAcrossWorkloads { policy } => format!(
                "rates = {{}}\nfor key in loaded_data:\n    if key.endswith(\"{policy}\"):\n        \
                 rates[key] = loaded_data[key][\"metadata\"]\nresult = str(rates)"
            ),
            Plan::CountRows { workload, policy, pc, address, misses_only } => {
                let mut filters = String::new();
                if let Some(pc) = pc {
                    filters.push_str(&format!("df = df[df.program_counter == {pc}]\n"));
                }
                if let Some(addr) = address {
                    filters.push_str(&format!("df = df[df.memory_address == {addr}]\n"));
                }
                if *misses_only {
                    filters.push_str("df = df[df.is_miss == 1]\n");
                }
                format!(
                    "df = loaded_data[\"{workload}_evictions_{policy}\"][\"data_frame\"]\n\
                     {filters}result = f\"count: {{len(df)}}\""
                )
            }
            Plan::Aggregate { workload, policy, pc, column, func } => format!(
                "df = loaded_data[\"{workload}_evictions_{policy}\"][\"data_frame\"]\n{}\
                 result = f\"{{df['{}'].{}():.2f}}\"",
                pc.map(|p| format!("df = df[df.program_counter == {p}]\n")).unwrap_or_default(),
                column.column_name(),
                func.python_name(),
            ),
            Plan::PerPcTable { workload, policy, limit } => format!(
                "df = loaded_data[\"{workload}_evictions_{policy}\"][\"data_frame\"]\n\
                 table = df.groupby(\"program_counter\").is_miss.agg([\"count\", \"sum\", \"mean\"])\n\
                 result = str(table.sort_values(\"sum\", ascending=False).head({limit}))"
            ),
            Plan::PerSetTable { workload, policy } => format!(
                "df = loaded_data[\"{workload}_evictions_{policy}\"][\"data_frame\"]\n\
                 table = 1 - df.groupby(\"cache_set_id\").is_miss.mean()\n\
                 result = str(table)"
            ),
            Plan::ContextBundle { workload, policy, pc } => format!(
                "meta = loaded_data[\"{workload}_evictions_{policy}\"][\"metadata\"]\n{}\
                 result = meta",
                pc.map(|p| {
                    format!(
                        "df = loaded_data[\"{workload}_evictions_{policy}\"][\"data_frame\"]\n\
                         df = df[df.program_counter == {p}]\n"
                    )
                })
                .unwrap_or_default()
            ),
            Plan::UniquePcs { workload, policy } => format!(
                "df = loaded_data[\"{workload}_evictions_{policy}\"][\"data_frame\"]\n\
                 result = str(df.program_counter.unique())"
            ),
            Plan::UniqueSets { workload, policy } => format!(
                "df = loaded_data[\"{workload}_evictions_{policy}\"][\"data_frame\"]\n\
                 result = str(sorted(df.cache_set_id.unique()))"
            ),
            Plan::GroupPcsByReuseVariance { workload, policy } => format!(
                "df = loaded_data[\"{workload}_evictions_{policy}\"][\"data_frame\"]\n\
                 g = df.groupby(\"program_counter\").accessed_address_reuse_distance_numeric\n\
                 cv = g.std() / g.mean()\n\
                 result = str(cv.sort_values())"
            ),
            Plan::HotColdSets { workload, policy } => format!(
                "df = loaded_data[\"{workload}_evictions_{policy}\"][\"data_frame\"]\n\
                 rates = 1 - df.groupby(\"cache_set_id\").is_miss.mean()\n\
                 result = f\"hot: {{rates.nlargest(5).index.tolist()}}, \
                 cold: {{rates.nsmallest(5).index.tolist()}}\""
            ),
            Plan::TakeFirst { workload, policy, pc, address, scope } => {
                let mut filters = String::new();
                if let Some(pc) = pc {
                    filters.push_str(&format!("df = df[df.program_counter == {pc}]\n"));
                }
                if let Some(addr) = address {
                    filters.push_str(&format!("df = df[df.memory_address == {addr}]\n"));
                }
                format!(
                    "# plan-optimizer: Lookup collapsed to a first-match scan (scope \"{scope}\")\n\
                     df = loaded_data[\"{workload}_evictions_{policy}\"][\"data_frame\"]\n\
                     {filters}row = df.iloc[0]\n\
                     result = f\"Cache result: {{row.evict}}\""
                )
            }
            Plan::TraceLen { workload, policy, scope } => format!(
                "# plan-optimizer: CountRows collapsed to the frame length (scope \"{scope}\")\n\
                 df = loaded_data[\"{workload}_evictions_{policy}\"][\"data_frame\"]\n\
                 result = f\"count: {{len(df)}}\""
            ),
            Plan::BatchRank { axis, anchor, metric, pc, scope } => {
                let (axis_name, key_test) = match axis {
                    RankAxis::Policies => ("policy", format!("key.startswith(\"{anchor}\")")),
                    RankAxis::Workloads => ("workload", format!("key.endswith(\"{anchor}\")")),
                };
                let metric_expr = match metric {
                    RankMetric::Ipc => {
                        "re.search(r\"estimated IPC of ([0-9.]+)\", entry[\"metadata\"]).group(1)"
                            .to_owned()
                    }
                    RankMetric::MissRate => match pc {
                        Some(p) => format!(
                            "entry[\"data_frame\"]\
                             .query(\"program_counter == {p}\").is_miss.mean()"
                        ),
                        None => {
                            "re.search(r\"([0-9.]+)% miss rate\", entry[\"metadata\"]).group(1)"
                                .to_owned()
                        }
                    },
                };
                format!(
                    "# plan-optimizer: per-{axis_name} lookups hoisted into one scoped scan \
                     (scope \"{scope}\")\n\
                     entries = {{key: loaded_data[key] for key in loaded_data if {key_test}}}\n\
                     values = {{key: {metric_expr} for key, entry in entries.items()}}\n\
                     result = str(sorted(values.items(), key=lambda kv: kv[1], reverse=True))"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_tracedb::TraceDatabaseBuilder;

    fn db() -> cachemind_tracedb::TraceDatabase {
        TraceDatabaseBuilder::quick_demo().build()
    }

    #[test]
    fn lookup_finds_rows() {
        let db = db();
        let row = db.get("mcf_evictions_lru").unwrap().frame.rows()[3].clone();
        let plan = Plan::Lookup {
            workload: "mcf".into(),
            policy: "lru".into(),
            pc: Some(row.pc),
            address: Some(row.address),
        };
        let facts = plan.run(&db).unwrap();
        assert!(matches!(facts[0], Fact::Outcome { is_miss, .. } if is_miss == row.is_miss));
    }

    #[test]
    fn unknown_trace_is_an_error() {
        let db = db();
        let plan = Plan::WorkloadMissRate { workload: "specjbb".into(), policy: "lru".into() };
        assert!(matches!(plan.run(&db), Err(PlanError::UnknownTrace(_))));
    }

    #[test]
    fn count_iterates_full_frame() {
        let db = db();
        let entry = db.get("mcf_evictions_lru").unwrap();
        let pc = entry.frame.rows()[0].pc;
        let truth = entry.frame.rows().iter().filter(|r| r.pc == pc).count() as u64;
        let plan = Plan::CountRows {
            workload: "mcf".into(),
            policy: "lru".into(),
            pc: Some(pc),
            address: None,
            misses_only: false,
        };
        let facts = plan.run(&db).unwrap();
        assert!(
            matches!(facts[0], Fact::CountValue { value, complete: true, .. } if value == truth)
        );
    }

    #[test]
    fn aggregate_mean_matches_manual() {
        let db = db();
        let entry = db.get("lbm_evictions_lru").unwrap();
        let values: Vec<f64> = entry
            .frame
            .rows()
            .iter()
            .filter_map(|r| r.accessed_reuse_distance.map(|d| d as f64))
            .collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let plan = Plan::Aggregate {
            workload: "lbm".into(),
            policy: "lru".into(),
            pc: None,
            column: AggColumn::AccessedReuse,
            func: AggFunc::Mean,
        };
        let facts = plan.run(&db).unwrap();
        let Fact::NumericValue { value, .. } = &facts[0] else { panic!() };
        assert!((value - truth).abs() < 1e-9);
    }

    #[test]
    fn tables_render_rows() {
        let db = db();
        let per_pc = Plan::PerPcTable { workload: "astar".into(), policy: "lru".into(), limit: 5 };
        let facts = per_pc.run(&db).unwrap();
        let Fact::Snippet { text, .. } = &facts[0] else { panic!() };
        assert!(text.contains("miss_rate="));
        let per_set = Plan::PerSetTable { workload: "astar".into(), policy: "lru".into() };
        let facts = per_set.run(&db).unwrap();
        let Fact::Snippet { text, .. } = &facts[0] else { panic!() };
        assert!(text.contains("hit_rate="));
    }

    #[test]
    fn rendered_code_follows_figure3_rules() {
        let plan = Plan::PcMissRate {
            workload: "mcf".into(),
            policy: "parrot".into(),
            pc: Pc::new(0x4037ba),
        };
        let code = plan.render_code();
        assert!(code.contains("loaded_data[\"mcf_evictions_parrot\"]"));
        assert!(code.contains("result ="), "must set result: {code}");
        assert!(!code.contains("print("), "no print per output rules");
    }

    #[test]
    fn exploration_plans_cover_chat_vocabulary() {
        let db = db();
        let entry = db.get("milc_evictions_lru");
        // milc is not in the quick demo; use mcf.
        assert!(entry.is_none());

        let pcs =
            Plan::UniquePcs { workload: "mcf".into(), policy: "lru".into() }.run(&db).unwrap();
        let Fact::CountValue { value, .. } = &pcs[0] else { panic!() };
        assert_eq!(*value as usize, db.get("mcf_evictions_lru").unwrap().frame.unique_pcs().len());

        let sets =
            Plan::UniqueSets { workload: "mcf".into(), policy: "lru".into() }.run(&db).unwrap();
        assert!(matches!(sets[0], Fact::CountValue { .. }));

        let grouped =
            Plan::GroupPcsByReuseVariance { workload: "mcf".into(), policy: "lru".into() }
                .run(&db)
                .unwrap();
        let Fact::Snippet { text, .. } = &grouped[0] else { panic!() };
        assert!(text.contains("LowVar") && text.contains("HighVar"));

        let hotcold = Plan::HotColdSets { workload: "astar".into(), policy: "belady".into() }
            .run(&db)
            .unwrap();
        let Fact::Snippet { text, .. } = &hotcold[0] else { panic!() };
        assert!(text.contains("Hot Sets") && text.contains("Cold Sets"));
    }

    #[test]
    fn exploration_code_rendering() {
        for plan in [
            Plan::UniquePcs { workload: "mcf".into(), policy: "lru".into() },
            Plan::UniqueSets { workload: "mcf".into(), policy: "lru".into() },
            Plan::GroupPcsByReuseVariance { workload: "mcf".into(), policy: "lru".into() },
            Plan::HotColdSets { workload: "mcf".into(), policy: "lru".into() },
        ] {
            let code = plan.render_code();
            assert!(code.contains("result ="), "missing result binding: {code}");
        }
    }

    #[test]
    fn ipc_plans_cite_machine_and_rank_policies() {
        let db = db();
        let facts = Plan::WorkloadIpc { workload: "mcf".into(), policy: "lru".into() }
            .run(&db)
            .expect("ipc plan runs");
        let Fact::NumericValue { what, value, complete } = &facts[0] else {
            panic!("expected numeric fact: {facts:?}")
        };
        assert!(*complete);
        assert!(what.contains("machine"), "fact must cite the machine: {what}");
        let entry = db.get("mcf_evictions_lru").unwrap();
        assert!((value - entry.ipc).abs() < 1e-6, "{value} vs {}", entry.ipc);

        let facts = Plan::CompareIpcAcrossPolicies { workload: "mcf".into() }
            .run(&db)
            .expect("comparison runs");
        assert_eq!(facts.len(), db.policies().len());
        let ipc_of = |name: &str| {
            facts
                .iter()
                .find_map(|f| match f {
                    Fact::PolicyValue { policy, value, .. } if policy == name => Some(*value),
                    _ => None,
                })
                .expect("policy fact present")
        };
        assert!(ipc_of("belady") >= ipc_of("lru"), "OPT must not be slower");

        let unknown = Plan::WorkloadIpc { workload: "specjbb".into(), policy: "lru".into() };
        assert!(matches!(unknown.run(&db), Err(PlanError::UnknownTrace(_))));

        for plan in [
            Plan::WorkloadIpc { workload: "mcf".into(), policy: "lru".into() },
            Plan::CompareIpcAcrossPolicies { workload: "mcf".into() },
        ] {
            let code = plan.render_code();
            assert!(code.contains("result ="), "missing result binding: {code}");
            assert!(code.contains("estimated IPC"), "code must parse the IPC: {code}");
        }
    }

    #[test]
    fn aggfunc_math() {
        assert_eq!(AggFunc::Mean.apply(&[1.0, 3.0]), Some(2.0));
        assert_eq!(AggFunc::Sum.apply(&[1.0, 3.0]), Some(4.0));
        assert_eq!(AggFunc::Max.apply(&[1.0, 3.0]), Some(3.0));
        assert_eq!(AggFunc::Min.apply(&[1.0, 3.0]), Some(1.0));
        assert_eq!(AggFunc::Std.apply(&[2.0, 2.0]), Some(0.0));
        assert_eq!(AggFunc::Mean.apply(&[]), None);
    }
}
