//! §6.3 use case: PC-directed software prefetching on the pointer-chase
//! microbenchmark. Paper: IPC 0.131452 -> 0.231261 (+76%).

use cachemind_core::insights::prefetch;

fn main() {
    let scale = cachemind_bench::scale_from_env();
    let report = prefetch::run(scale, 8);

    println!("Use case — software prefetch insertion (pointer-chase microbenchmark)");
    cachemind_bench::rule(72);
    println!("{}", report.transcript);
    cachemind_bench::rule(72);
    println!(
        "Dominant miss PC: {} ({:.1}% of all misses, {:.1}% miss rate)",
        report.dominant_pc,
        report.dominant_miss_share * 100.0,
        report.dominant_miss_rate * 100.0
    );
    println!(
        "IPC on {}: {:.6} -> {:.6}  ({:+.2}% speedup)",
        report.machine, report.base_ipc, report.prefetch_ipc, report.speedup_percent
    );
    println!(
        "Inserted prefetches: {:.1}% accurate, {:.1}% coverage",
        report.swpf_accuracy * 100.0,
        report.swpf_coverage * 100.0
    );
    println!("\nPaper reference: IPC 0.131452 -> 0.231261 (+76% speedup).");
}
