//! `build_db` — the snapshot-lifecycle benchmark: build a sharded trace
//! database once, save it as a versioned snapshot, load it back, and
//! report how the load compares to the build.
//!
//! ```text
//! build_db [--out PATH] [--shards S] [--machines table2,small]
//!          [--prefetchers stride4] [--keep]
//! ```
//!
//! Prints one JSON object with the build/save/load wall-clock numbers,
//! the snapshot size, and the `load_speedup` factor (build ÷ load) — the
//! number behind the PR's "snapshot startup is an order of magnitude
//! faster than simulating" claim. The scale comes from `CACHEMIND_SCALE`
//! (`tiny` default), matching the other bench binaries. The snapshot file
//! is deleted afterwards unless `--keep` is passed.

use cachemind_bench::scale_from_env;
use cachemind_serve::engine::{build_database, ServeConfig};
use cachemind_tracedb::shard::ShardedTraceDatabase;
use cachemind_tracedb::store::TraceStore;
use serde_json::Value;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn names(args: &[String], name: &str) -> Vec<String> {
    flag(args, name)
        .map(|v| v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_owned).collect())
        .unwrap_or_default()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = ServeConfig {
        scale: scale_from_env(),
        shards: flag(&args, "--shards")
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --shards expects a positive integer, got {v:?}");
                    std::process::exit(2);
                })
            })
            .unwrap_or(ServeConfig::default().shards),
        machines: names(&args, "--machines"),
        prefetchers: names(&args, "--prefetchers"),
        ..Default::default()
    };
    let path = flag(&args, "--out").unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("cachemind_build_db_{}.snap", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });

    // Timing comes from the workspace metrics registry: the tracedb layer
    // records `tracedb.build` / `tracedb.snapshot_save` /
    // `tracedb.snapshot_load` spans itself, and this binary runs each stage
    // exactly once, so the histogram sums ARE the stage durations.
    eprintln!("[build_db] building ({:?}, {} shards) ...", config.scale, config.shards);
    let db = match build_database(&config) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    if let Err(e) = db.save(&path) {
        eprintln!("error: cannot write snapshot {path:?}: {e}");
        std::process::exit(1);
    }
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    let loaded = match ShardedTraceDatabase::load(&path) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: cannot load snapshot {path:?}: {e}");
            std::process::exit(1);
        }
    };
    let spans = cachemind_obs::global().snapshot();
    let build_micros = spans.histogram_sum(cachemind_obs::names::TRACEDB_BUILD);
    let save_micros = spans.histogram_sum(cachemind_obs::names::TRACEDB_SNAPSHOT_SAVE);
    let load_micros = spans.histogram_sum(cachemind_obs::names::TRACEDB_SNAPSHOT_LOAD);

    // The loaded store must be the built store — same keys, same shard
    // layout — or the timing numbers compare different databases.
    assert_eq!(loaded.num_shards(), db.num_shards(), "shard layout survives the round trip");
    assert_eq!(loaded.trace_keys(), db.trace_keys(), "key space survives the round trip");

    if !args.iter().any(|a| a == "--keep") {
        std::fs::remove_file(&path).ok();
    } else {
        eprintln!("[build_db] kept snapshot at {path}");
    }

    let mut report = Value::object();
    report.insert("scale", Value::from(format!("{:?}", config.scale).to_lowercase()));
    report.insert("shards", Value::from(db.num_shards()));
    report.insert("traces", Value::from(TraceStore::len(&db)));
    report.insert("snapshot_bytes", Value::from(bytes));
    report.insert("build_micros", Value::from(build_micros));
    report.insert("save_micros", Value::from(save_micros));
    report.insert("load_micros", Value::from(load_micros));
    report.insert(
        "load_speedup",
        Value::from(if load_micros > 0 { build_micros as f64 / load_micros as f64 } else { 0.0 }),
    );
    println!("{}", serde_json::to_string_pretty(&report).expect("shim serialization"));
}
