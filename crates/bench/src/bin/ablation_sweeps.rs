//! Ablation sweeps for the DESIGN.md §5 design choices: Sieve slice cap,
//! Ranger schema card, dense index stride — plus the machine-axis
//! ablations (DRAM latency, prefetcher kind) opened by the scenario grid.
//!
//! Every swept parameter point is an independent harness run; the
//! `insights::ablation` module spreads them across cores with the sweep
//! engine's `sweep_cells` primitive and `ScenarioGrid`, so the sweeps no
//! longer replay configurations serially (output stays byte-identical for
//! any `RAYON_NUM_THREADS`).

use cachemind_benchsuite::catalog::Catalog;
use cachemind_core::insights::ablation;
use cachemind_sim::prefetch::PrefetcherKind;

fn main() {
    let db = cachemind_bench::load_db();
    let catalog = Catalog::generate(&db);

    println!("Ablation — Sieve slice cap vs Count-category accuracy");
    cachemind_bench::rule(60);
    for p in ablation::sieve_slice_cap(&db, &catalog, &[5, 50, 500, 1_000_000]) {
        println!("  cap {:>9} -> {}", p.parameter, cachemind_bench::pct(p.metric));
    }

    println!("\nAblation — Ranger schema card vs Arithmetic accuracy");
    cachemind_bench::rule(60);
    for p in ablation::ranger_schema(&db, &catalog) {
        println!(
            "  schema {} -> {}",
            if p.parameter == 1 { "on " } else { "off" },
            cachemind_bench::pct(p.metric)
        );
    }

    println!("\nAblation — dense index stride vs probe retrieval success");
    cachemind_bench::rule(60);
    for p in ablation::dense_stride(&db, &[1, 4, 16, 64]) {
        println!("  stride {:>3} -> {}", p.parameter, cachemind_bench::pct(p.metric));
    }

    let scale = cachemind_bench::scale_from_env();

    println!("\nAblation — DRAM latency vs IPC (scenario grid, mcf under LRU)");
    cachemind_bench::rule(60);
    for p in ablation::dram_latency(scale, &[100, 160, 400, 800]) {
        println!(
            "  {:<28} miss {} -> IPC {:.4}",
            p.label,
            cachemind_bench::pct(p.miss_rate * 100.0),
            p.ipc
        );
    }

    println!("\nAblation — prefetcher kind vs coverage and IPC (scenario grid, lbm under LRU)");
    cachemind_bench::rule(60);
    let kinds =
        [PrefetcherKind::None, PrefetcherKind::NextLine, PrefetcherKind::Stride { degree: 4 }];
    for p in ablation::prefetcher_kinds(scale, &kinds) {
        println!(
            "  {:<10} coverage {} -> IPC {:.4}",
            p.label,
            cachemind_bench::pct(p.prefetch_coverage * 100.0),
            p.ipc
        );
    }

    println!(
        "\nReading: the slice cap is the mechanism behind the paper's Count collapse; \
         hiding the schema card reproduces 'context can suppress latent knowledge'; \
         even stride-1 dense indexing stays far below Sieve/Ranger; the scenario-grid \
         rows show how strongly DRAM latency and prefetch coverage move IPC."
    );
}
