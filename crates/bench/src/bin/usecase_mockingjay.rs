//! §6.3 use case: Mockingjay stable-PC RDP training on milc.
//! Paper: IPC 0.47698 -> 0.480307 (+0.7%).

use cachemind_core::insights::mockingjay;

fn main() {
    let scale = cachemind_bench::scale_from_env();
    let report = mockingjay::run(scale);

    println!("Use case — Mockingjay stable-PC reuse-distance-predictor training (milc)");
    cachemind_bench::rule(72);
    println!("{}", report.transcript);
    cachemind_bench::rule(72);
    println!("Stable PCs: {}   Noisy PCs: {}", report.stable_pcs.len(), report.noisy_pcs.len());
    println!(
        "Hit rate: {:.2}% -> {:.2}%",
        report.base_hit_rate * 100.0,
        report.stable_hit_rate * 100.0
    );
    println!(
        "IPC on {}: {:.5} -> {:.5}  ({:+.2}% speedup)",
        report.machine, report.base_ipc, report.stable_ipc, report.speedup_percent
    );
    println!("\nPaper reference: IPC 0.47698 -> 0.480307 (+0.7% speedup) on milc.");
}
