//! Figure 9: retrieval success and latency of LlamaIndex (dense baseline)
//! vs Sieve vs Ranger over ten probe queries, plus the Ranger system
//! prompt of Figure 3.

use cachemind_retrieval::dense::DenseIndexRetriever;
use cachemind_retrieval::probes::{probe_queries, run_probes};
use cachemind_retrieval::ranger::RangerRetriever;
use cachemind_retrieval::sieve::SieveRetriever;

fn main() {
    let db = cachemind_bench::load_db();
    let probes = probe_queries(&db);

    eprintln!("[cachemind-bench] building dense index ...");
    let dense = DenseIndexRetriever::build(&db, 4);

    let reports = vec![
        run_probes(&db, &dense, &probes),
        run_probes(&db, &SieveRetriever::new(), &probes),
        run_probes(&db, &RangerRetriever::new(), &probes),
    ];

    println!("Figure 9 — retrieval comparison over {} probe queries", probes.len());
    cachemind_bench::rule(72);
    println!("{:<14} {:>22} {:>22}", "Retriever", "Correct context", "Mean latency");
    cachemind_bench::rule(72);
    for r in &reports {
        println!(
            "{:<14} {:>18}/{} ({:>5.1}%) {:>17.1} us",
            r.retriever,
            r.correct,
            r.total,
            r.success_rate() * 100.0,
            r.mean_latency_us
        );
    }
    println!(
        "\nPaper reference: LlamaIndex 1/10 (10%), Sieve 6/10 (60%), Ranger 9/10 (90%); \
         the dense baseline is also the slowest by far (36.6 s vs 3.7/4.4 s)."
    );

    println!("\nFigure 3 — the Ranger system prompt (schema card)");
    cachemind_bench::rule(72);
    for line in RangerRetriever::system_prompt(&db).lines().take(24) {
        println!("  {line}");
    }
    println!("  ...");
}
