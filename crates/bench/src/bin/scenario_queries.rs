//! `scenario_queries` — the typed Query API demo/driver: build one
//! multi-machine trace database and ask the *same* IPC question once per
//! machine through [`CacheMind::ask_query`], printing the per-machine
//! answers side by side.
//!
//! ```text
//! scenario_queries [--machines table2,small] [--prefetchers stride4]
//!                  [--retriever sieve|ranger]
//! ```
//!
//! This is the bench-side proof of the scenario-scoped query surface: one
//! shared database, one question text, N `ScenarioSelector`s, N answers
//! each grounded in its own machine's (and, with `--prefetchers`, its own
//! prefetcher's) scenario sentence.

use cachemind_bench::scale_from_env;
use cachemind_core::system::{CacheMind, Query, RetrieverKind};
use cachemind_sim::config::MachineConfig;
use cachemind_sim::prefetch::PrefetcherKind;
use cachemind_sim::scenario::ScenarioSelector;
use cachemind_tracedb::database::TraceDatabaseBuilder;
use cachemind_tracedb::store::TraceStore;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let machine_names: Vec<String> = flag(&args, "--machines")
        .unwrap_or_else(|| "table2,small".to_owned())
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    let retriever = match flag(&args, "--retriever").as_deref() {
        None | Some("ranger") => RetrieverKind::Ranger,
        Some("sieve") => RetrieverKind::Sieve,
        Some(other) => {
            eprintln!("error: unknown retriever {other:?} (expected sieve or ranger)");
            std::process::exit(2);
        }
    };
    let machines: Vec<MachineConfig> = machine_names
        .iter()
        .map(|name| {
            MachineConfig::preset(name).unwrap_or_else(|| {
                eprintln!("error: unknown machine preset {name:?}");
                std::process::exit(2);
            })
        })
        .collect();
    let prefetcher_names: Vec<String> = flag(&args, "--prefetchers")
        .unwrap_or_default()
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    let prefetchers: Vec<PrefetcherKind> = prefetcher_names
        .iter()
        .map(|name| {
            PrefetcherKind::parse(name).unwrap_or_else(|| {
                eprintln!("error: unknown prefetcher {name:?}");
                std::process::exit(2);
            })
        })
        .collect();

    eprintln!(
        "[scenario_queries] building trace database at {:?} scale for {} extra machine(s) and \
         {} extra prefetcher(s) ...",
        scale_from_env(),
        machines.len(),
        prefetchers.len()
    );
    let db = TraceDatabaseBuilder::new()
        .scale(scale_from_env())
        .machines(machines)
        .prefetchers(prefetchers)
        .build();
    eprintln!(
        "[scenario_queries] database ready: {} traces across machines [{}]",
        db.len(),
        TraceStore::machines(&db).join(", ")
    );
    let workloads = TraceStore::workloads(&db);
    let policies = TraceStore::policies(&db);
    let mind = CacheMind::new(db).with_retriever(retriever);

    println!("Scenario-scoped IPC answers (one shared database, one question per machine)");
    println!("{:<10} {:<10} {:<34} answer", "workload", "policy", "scenario");
    println!("{}", "-".repeat(80));
    for workload in &workloads {
        for policy in &policies {
            let text = format!("What is the estimated IPC for {workload} under {policy}?");
            // Primary machine first (unscoped), then each preset by name —
            // and, per prefetcher, the prefetcher-qualified variant of each.
            let mut scopes = vec![(String::from("(primary)"), ScenarioSelector::all())];
            for pf in &prefetcher_names {
                let selector = ScenarioSelector::parse(&format!("+{pf}"))
                    .expect("validated prefetcher names form selectors");
                scopes.push((format!("+{pf}"), selector));
            }
            for name in &machine_names {
                scopes.push((format!("@{name}"), ScenarioSelector::all().with_machine(name)));
                for pf in &prefetcher_names {
                    let label = format!("@{name}+{pf}");
                    let selector = ScenarioSelector::parse(&label)
                        .expect("validated machine and prefetcher names form selectors");
                    scopes.push((label, selector));
                }
            }
            for (label, selector) in scopes {
                let answer = mind.ask_query(&Query::scoped(&text, selector));
                let evidence = answer
                    .context
                    .facts
                    .first()
                    .map(|f| f.render())
                    .unwrap_or_else(|| "(no evidence)".to_owned());
                println!("{workload:<10} {policy:<10} {label:<34} {evidence}");
            }
        }
    }
}
