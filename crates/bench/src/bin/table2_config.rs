//! Table 2: processor and memory configuration.

use cachemind_sim::config::HierarchyConfig;

fn main() {
    println!("Table 2 — Processor and Memory Configuration");
    cachemind_bench::rule(78);
    print!("{}", HierarchyConfig::table2().describe());
    cachemind_bench::rule(78);
    println!(
        "Database-experiment LLC (scaled; see DESIGN.md): {:?}",
        cachemind_tracedb::database::TraceDatabaseBuilder::experiment_llc()
    );
    println!("Replacement policies: Belady's optimal, LRU, PARROT (imitation), MLP");
}
