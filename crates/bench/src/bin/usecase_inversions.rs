//! §6.3 finding: Belady vs PARROT per-PC hit-rate inversions.
//! Paper: PARROT beats Belady on 2 / 5 / 3 PCs for astar / lbm / mcf while
//! Belady wins in aggregate on each workload.

use cachemind_core::insights::inversions;

fn main() {
    let scale = cachemind_bench::scale_from_env();
    let rows = inversions::run(scale);

    println!("Belady vs PARROT — per-PC inversions");
    cachemind_bench::rule(78);
    println!(
        "{:<10} {:>16} {:>16} {:>12}  {}",
        "Workload", "Belady hit", "PARROT hit", "#inversions", "inverted PCs"
    );
    cachemind_bench::rule(78);
    for row in &rows {
        println!(
            "{:<10} {:>15.2}% {:>15.2}% {:>12}  {}",
            row.workload,
            row.belady_hit_rate * 100.0,
            row.parrot_hit_rate * 100.0,
            row.inverted_pcs.len(),
            row.inverted_pcs.iter().map(|p| format!("{p}")).collect::<Vec<_>>().join(", ")
        );
    }
    println!(
        "\nPaper reference: PARROT outperformed Belady for 2 (astar), 5 (lbm) and 3 (mcf) \
         PCs, even though OPT wins every aggregate — the global bound does not hold per PC."
    );
}
