//! Figure 8: CacheMind-Sieve vs CacheMind-Ranger across the trace-grounded
//! categories (generator held fixed at GPT-4o).

use cachemind_benchsuite::catalog::Catalog;
use cachemind_core::eval;

fn main() {
    let db = cachemind_bench::load_db();
    let catalog = Catalog::generate(&db);
    let fig = eval::figure8(&db, &catalog);

    println!("Figure 8 — Sieve vs Ranger by trace-grounded category (GPT-4o generator)");
    cachemind_bench::rule(72);
    println!("{:<28} {:>16} {:>16}", "Category", "Sieve", "Ranger");
    cachemind_bench::rule(72);
    for (label, sieve, ranger) in &fig.rows {
        println!(
            "{label:<28} {:>16} {:>16}",
            cachemind_bench::pct(*sieve),
            cachemind_bench::pct(*ranger)
        );
    }
    cachemind_bench::rule(72);
    println!(
        "{:<28} {:>16} {:>16}",
        "Trace-grounded total",
        cachemind_bench::pct(fig.tg_total.0),
        cachemind_bench::pct(fig.tg_total.1)
    );
    println!(
        "{:<28} {:>16} {:>16}",
        "Reasoning (ARA) total",
        cachemind_bench::pct(fig.ara_total.0),
        cachemind_bench::pct(fig.ara_total.1)
    );
    println!(
        "\nPaper reference: Ranger 89.33% vs Sieve 66.67% on the trace-grounded tier \
         (Count: Sieve 0%); Sieve 84.80% vs Ranger 64.80% on the reasoning tier."
    );
}
