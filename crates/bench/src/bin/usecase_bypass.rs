//! §6.3 use case: signature optimisation for bypass logic on mcf/LRU.
//! Paper: hit rate 25.06% -> 26.98% (+7.66% relative), IPC +2.04%.

use cachemind_core::insights::bypass;

fn main() {
    let scale = cachemind_bench::scale_from_env();
    let report = bypass::run(scale, 10);

    println!("Use case — bypass-signature optimisation ({} workload, LRU)", report.workload);
    cachemind_bench::rule(72);
    println!("{}", report.transcript);
    cachemind_bench::rule(72);
    println!(
        "Bypassed PCs ({}): {}",
        report.bypassed_pcs.len(),
        report.bypassed_pcs.iter().map(|p| format!("{p}")).collect::<Vec<_>>().join(", ")
    );
    println!(
        "Hit rate: {:.2}% -> {:.2}%  ({:+.2}% relative)",
        report.base_hit_rate * 100.0,
        report.bypass_hit_rate * 100.0,
        report.relative_hit_gain_percent
    );
    println!(
        "IPC:      {:.5} -> {:.5}  ({:+.2}% speedup)",
        report.base_ipc, report.bypass_ipc, report.speedup_percent
    );
    println!(
        "\nPaper reference: hit rate 25.06% -> 26.98% (+7.66% relative), IPC 0.047905 -> \
         0.048809 (+2.04%)."
    );
}
