//! Figure 6: one-/few-shot prompting ablation. The paper: "one or few-shot
//! prompting does not improve system performance significantly ... the
//! given examples help the generator identify and assess trick questions
//! better than zero-shot prompting."
//!
//! Each backend's three shot-count configurations run in parallel on the
//! sweep engine (`sweep_cells` inside `eval::figure6`) rather than
//! serially; output is byte-identical for any `RAYON_NUM_THREADS`.

use cachemind_benchsuite::catalog::Catalog;
use cachemind_core::eval;
use cachemind_lang::context::RetrievedContext;
use cachemind_lang::profiles::BackendKind;
use cachemind_lang::prompt::{Example, PromptBuilder};

fn main() {
    let db = cachemind_bench::load_db();
    let catalog = Catalog::generate(&db);

    // Render the Figure 6 one-shot prompt itself.
    println!("Figure 6 — the one-shot prompt (Cache Hit/Miss category)");
    cachemind_bench::rule(78);
    let prompt = PromptBuilder::new().example(Example::figure6()).render(
        "Does the memory access with PC 0x401dc9 and address 0x47ea85d37f result in a \
             cache hit or cache miss for the lbm workload and PARROT replacement policy?",
        &RetrievedContext::empty("sieve"),
    );
    for line in prompt.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...\n");

    println!("Few-shot ablation (per backend: shots -> total / trick accuracy)");
    cachemind_bench::rule(78);
    for backend in [BackendKind::Gpt4o, BackendKind::O3, BackendKind::Gpt35Turbo] {
        let fig = eval::figure6(&db, &catalog, backend);
        print!("{:<20}", backend.label());
        for (shots, total, trick) in &fig.rows {
            print!(
                "  [{}-shot: {} total, {} trick]",
                shots,
                cachemind_bench::pct(*total),
                cachemind_bench::pct(*trick)
            );
        }
        println!();
    }
    println!("\nPaper reference: totals barely move with shots; trick-question accuracy improves.");
}
