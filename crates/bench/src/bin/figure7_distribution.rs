//! Figure 7: distribution of reasoning (rubric) scores per backend —
//! o3 is bimodal, GPT-4o consistently competent.

use cachemind_benchsuite::catalog::Catalog;
use cachemind_core::eval;

fn main() {
    let db = cachemind_bench::load_db();
    let catalog = Catalog::generate(&db);
    let fig = eval::figure7(&db, &catalog);

    println!("Figure 7 — rubric-score histograms over the 25 reasoning questions");
    cachemind_bench::rule(76);
    println!("{:<22} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}", "Backend", "0", "1", "2", "3", "4", "5");
    cachemind_bench::rule(76);
    for (backend, hist) in &fig.rows {
        print!("{backend:<22}");
        for count in hist {
            print!(" {count:>5}");
        }
        println!();
    }
    cachemind_bench::rule(76);
    for (backend, hist) in &fig.rows {
        println!("{backend:<22} {}", sparkline(hist));
    }
    println!("\nPaper reference: o3 concentrates at the extremes (bimodal); GPT-4o clusters high.");
}

fn sparkline(hist: &[usize; 6]) -> String {
    let max = hist.iter().copied().max().unwrap_or(1).max(1);
    hist.iter()
        .map(|&c| {
            let level = (c * 7) / max;
            char::from_u32(0x2581 + level as u32).unwrap_or('_')
        })
        .collect()
}
