//! Table 1: CacheMindBench categories, counts and representative examples.

use cachemind_benchsuite::catalog::{Catalog, CATEGORY_SIZES};
use cachemind_lang::intent::Tier;

fn main() {
    let db = cachemind_bench::load_db();
    let catalog = Catalog::generate(&db);

    println!("Table 1 — CacheMindBench categories and representative queries");
    cachemind_bench::rule(100);
    println!("{:<28} {:>5}  {:<60}", "Category", "#", "Representative example");
    cachemind_bench::rule(100);
    for (category, size) in CATEGORY_SIZES {
        let questions = catalog.by_category(category);
        assert_eq!(questions.len(), size);
        let example = questions.first().map(|q| q.text.as_str()).unwrap_or("");
        let truncated: String = example.chars().take(58).collect();
        println!("{:<28} {:>5}  {:<60}", category.label(), size, truncated);
    }
    cachemind_bench::rule(100);
    let tg = catalog.questions().iter().filter(|q| q.tier() == Tier::TraceGrounded).count();
    let ara = catalog.questions().len() - tg;
    println!("Trace-Grounded questions: {tg}   Architectural Reasoning questions: {ara}");
}
