//! Parallel policy × workload × configuration sweep driver.
//!
//! Replays every requested workload under every requested policy and LLC
//! geometry using the rayon-parallel [`cachemind_sim::sweep::SweepGrid`]
//! engine, then prints the canonical report. The output is byte-identical
//! for any `RAYON_NUM_THREADS` setting — determinism across thread counts
//! is part of the sweep engine's contract.
//!
//! Environment:
//!
//! - `CACHEMIND_SCALE` — workload scale (`tiny` | `small` | `full`,
//!   default `small`), as for every other bench binary.
//! - `RAYON_NUM_THREADS` — worker count (default: all cores).
//!
//! Usage:
//!
//! ```text
//! sweep_grid [--policies a,b,c] [--workloads x,y,z] [--json]
//! ```
//!
//! Defaults sweep 5 policies × 4 workloads × 3 LLC geometries (60 cells).

use cachemind_sim::config::CacheConfig;
use cachemind_sim::sweep::{config_label, SweepGrid, SweepStream};
use cachemind_workloads::workload::Scale;

/// The default policy set: online baselines, modern RRIP-family policies,
/// and the offline optimum as the lower bound.
const DEFAULT_POLICIES: [&str; 5] = ["lru", "srrip", "ship", "mockingjay", "belady"];

/// The default workload set: the three database workloads plus the
/// pointer-chasing microbenchmark.
const DEFAULT_WORKLOADS: [&str; 4] = ["astar", "lbm", "mcf", "ptrchase"];

/// LLC geometries swept by default: the paper's LLC plus half-capacity and
/// half-associativity variants (scaled down one notch at tiny scale so the
/// sweep still exercises capacity pressure).
fn default_configs(scale: Scale) -> Vec<CacheConfig> {
    let shrink = match scale {
        Scale::Tiny => 3,
        _ => 0,
    };
    vec![
        CacheConfig::new("LLC", 11 - shrink, 16, 6).with_latency(26).with_mshr(64),
        CacheConfig::new("LLC-half", 10 - shrink, 16, 6).with_latency(26).with_mshr(64),
        CacheConfig::new("LLC-8way", 11 - shrink, 8, 6).with_latency(26).with_mshr(64),
    ]
}

fn parse_list(arg: Option<String>, default: &[&str]) -> Vec<String> {
    match arg {
        Some(list) => {
            list.split(',').map(|s| s.trim().to_owned()).filter(|s| !s.is_empty()).collect()
        }
        None => default.iter().map(|s| (*s).to_owned()).collect(),
    }
}

fn main() {
    let mut policies_arg = None;
    let mut workloads_arg = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    let require_value = |flag: &str, value: Option<String>| match value {
        Some(v) => Some(v),
        None => {
            eprintln!("sweep_grid: {flag} requires a comma-separated value");
            std::process::exit(2);
        }
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--policies" => policies_arg = require_value("--policies", args.next()),
            "--workloads" => workloads_arg = require_value("--workloads", args.next()),
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: sweep_grid [--policies a,b,c] [--workloads x,y,z] [--json]");
                return;
            }
            other => {
                eprintln!("sweep_grid: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let scale = cachemind_bench::scale_from_env();
    let policies = parse_list(policies_arg, &DEFAULT_POLICIES);
    let workload_names = parse_list(workloads_arg, &DEFAULT_WORKLOADS);

    let mut grid = SweepGrid::default();
    grid.policies = policies;
    for name in &workload_names {
        let workload = match cachemind_workloads::by_name(name, scale) {
            Some(w) => w,
            None => {
                eprintln!("sweep_grid: unknown workload {name:?}");
                std::process::exit(2);
            }
        };
        grid.streams.push(SweepStream::new(workload.name.clone(), workload.accesses));
    }
    grid.configs = default_configs(scale);

    eprintln!(
        "[sweep_grid] {} policies x {} workloads x {} configs = {} cells at {:?} scale on {} worker(s)",
        grid.policies.len(),
        grid.streams.len(),
        grid.configs.len(),
        grid.cells(),
        scale,
        rayon::current_num_threads(),
    );
    for cfg in &grid.configs {
        eprintln!(
            "[sweep_grid]   config {}: {} KB, {} sets, {} ways",
            config_label(cfg),
            cfg.capacity_bytes() / 1024,
            cfg.sets(),
            cfg.ways,
        );
    }

    let started = std::time::Instant::now();
    let report = match grid.run(cachemind_policies::by_name) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("sweep_grid: {err}");
            std::process::exit(2);
        }
    };
    eprintln!("[sweep_grid] swept {} cells in {:?}", report.cells.len(), started.elapsed());

    if json {
        println!("{}", serde_json::to_string_pretty(&report).expect("report serializes"));
    } else {
        print!("{}", report.to_table());
    }
}
