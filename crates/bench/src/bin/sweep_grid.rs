//! Parallel scenario sweep driver: workload × machine × prefetcher ×
//! policy.
//!
//! Replays every requested workload under every requested policy using the
//! rayon-parallel sweep engine, then prints the canonical report. The
//! output is byte-identical for any `RAYON_NUM_THREADS` setting —
//! determinism across thread counts is part of the sweep engine's contract.
//!
//! Two modes:
//!
//! * **Legacy geometry mode** (default): sweeps the LLC geometries of the
//!   original `SweepGrid` — `(workload × LLC CacheConfig × policy)` — and
//!   prints the legacy report, so existing CI diffs stay stable.
//! * **Scenario mode** (any of `--machines`, `--prefetchers`,
//!   `--dram-latency` present): sweeps full
//!   `(workload × machine × prefetcher × policy)` scenario cells through
//!   [`cachemind_sim::sweep::ScenarioGrid`], reporting the miss taxonomy
//!   plus prefetch accuracy/coverage and model-estimated IPC with per-axis
//!   roll-ups.
//!
//! Environment:
//!
//! - `CACHEMIND_SCALE` — workload scale (`tiny` | `small` | `full`,
//!   default `small`), as for every other bench binary.
//! - `RAYON_NUM_THREADS` — worker count (default: all cores).
//!
//! Usage:
//!
//! ```text
//! sweep_grid [--policies a,b,c] [--workloads x,y,z] [--json]
//!            [--machines table2,small] [--prefetchers none,nextline,stride4]
//!            [--dram-latency 200,400] [--bench-json PATH] [--no-timing]
//! ```
//!
//! The worked example from the README:
//!
//! ```text
//! sweep_grid --prefetchers stride --dram-latency 200,400
//! ```
//!
//! sweeps every default workload and policy over the Table-2 machine at two
//! DRAM latencies with a degree-4 stride prefetcher, and reports per-cell
//! IPC.

use cachemind_sim::config::{CacheConfig, MachineConfig};
use cachemind_sim::prefetch::PrefetcherKind;
use cachemind_sim::sweep::{config_label, ScenarioGrid, SweepGrid, SweepStream};
use cachemind_workloads::workload::Scale;

/// The default policy set: online baselines, modern RRIP-family policies,
/// and the offline optimum as the lower bound.
const DEFAULT_POLICIES: [&str; 5] = ["lru", "srrip", "ship", "mockingjay", "belady"];

/// The default workload set: the three database workloads plus the
/// pointer-chasing microbenchmark.
const DEFAULT_WORKLOADS: [&str; 4] = ["astar", "lbm", "mcf", "ptrchase"];

/// LLC geometries swept in legacy mode: the paper's LLC plus half-capacity
/// and half-associativity variants (scaled down one notch at tiny scale so
/// the sweep still exercises capacity pressure).
fn default_configs(scale: Scale) -> Vec<CacheConfig> {
    let shrink = match scale {
        Scale::Tiny => 3,
        _ => 0,
    };
    vec![
        CacheConfig::new("LLC", 11 - shrink, 16, 6).with_latency(26).with_mshr(64),
        CacheConfig::new("LLC-half", 10 - shrink, 16, 6).with_latency(26).with_mshr(64),
        CacheConfig::new("LLC-8way", 11 - shrink, 8, 6).with_latency(26).with_mshr(64),
    ]
}

fn parse_list(arg: Option<String>, default: &[&str]) -> Vec<String> {
    match arg {
        Some(list) => {
            list.split(',').map(|s| s.trim().to_owned()).filter(|s| !s.is_empty()).collect()
        }
        None => default.iter().map(|s| (*s).to_owned()).collect(),
    }
}

fn fail(message: String) -> ! {
    eprintln!("sweep_grid: {message}");
    std::process::exit(2);
}

/// The machine-performance record written by `--bench-json` — the
/// `BENCH_sweep.json` schema. With `--no-timing` every machine-dependent
/// field (wall clock, throughput, worker count) is zeroed so the record is
/// byte-identical for any `RAYON_NUM_THREADS`.
fn bench_record(
    mode: &str,
    cells: usize,
    threads: usize,
    scale: Scale,
    wall: Option<std::time::Duration>,
) -> String {
    let (wall_ms, cells_per_sec) = match wall {
        Some(wall) => {
            let secs = wall.as_secs_f64();
            let rate = if secs > 0.0 { cells as f64 / secs } else { 0.0 };
            (secs * 1_000.0, rate)
        }
        None => (0.0, 0.0),
    };
    // Per-stage breakdown from the process-global metrics registry: the
    // sweep engine records `sweep.prepare` / `sweep.replay` spans on every
    // run. Zeroed with the rest of the wall-clock fields under --no-timing.
    let (prepare_ms, replay_ms) = match wall {
        Some(_) => {
            let snap = cachemind_obs::global().snapshot();
            (
                snap.histogram_sum(cachemind_obs::names::SWEEP_PREPARE) as f64 / 1_000.0,
                snap.histogram_sum(cachemind_obs::names::SWEEP_REPLAY) as f64 / 1_000.0,
            )
        }
        None => (0.0, 0.0),
    };
    format!(
        "{{\n  \"bench\": \"sweep\",\n  \"version\": 1,\n  \"mode\": \"{mode}\",\n  \
         \"scale\": \"{scale:?}\",\n  \"cells\": {cells},\n  \"threads\": {threads},\n  \
         \"wall_ms\": {wall_ms:.3},\n  \"prepare_ms\": {prepare_ms:.3},\n  \
         \"replay_ms\": {replay_ms:.3},\n  \"cells_per_sec\": {cells_per_sec:.1}\n}}"
    )
}

fn main() {
    let mut policies_arg = None;
    let mut workloads_arg = None;
    let mut machines_arg: Option<String> = None;
    let mut prefetchers_arg: Option<String> = None;
    let mut dram_arg: Option<String> = None;
    let mut bench_json: Option<String> = None;
    let mut no_timing = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    let require_value = |flag: &str, value: Option<String>| match value {
        Some(v) => Some(v),
        None => fail(format!("{flag} requires a value")),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--policies" => policies_arg = require_value("--policies", args.next()),
            "--workloads" => workloads_arg = require_value("--workloads", args.next()),
            "--machines" => machines_arg = require_value("--machines", args.next()),
            "--prefetchers" => prefetchers_arg = require_value("--prefetchers", args.next()),
            "--dram-latency" => dram_arg = require_value("--dram-latency", args.next()),
            "--bench-json" => bench_json = require_value("--bench-json", args.next()),
            "--no-timing" => no_timing = true,
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: sweep_grid [--policies a,b,c] [--workloads x,y,z] [--json]\n\
                     \x20                 [--machines table2,small] [--prefetchers none,nextline,stride4]\n\
                     \x20                 [--dram-latency 200,400] [--bench-json PATH] [--no-timing]"
                );
                return;
            }
            other => fail(format!("unknown argument {other:?} (try --help)")),
        }
    }

    let scale = cachemind_bench::scale_from_env();
    let policies = parse_list(policies_arg, &DEFAULT_POLICIES);
    let workload_names = parse_list(workloads_arg, &DEFAULT_WORKLOADS);
    let scenario_mode = machines_arg.is_some() || prefetchers_arg.is_some() || dram_arg.is_some();

    let mut streams = Vec::new();
    for name in &workload_names {
        let workload = match cachemind_workloads::by_name(name, scale) {
            Some(w) => w,
            None => fail(format!("unknown workload {name:?}")),
        };
        streams.push(
            SweepStream::new(workload.name.clone(), workload.accesses)
                .with_instr_count(workload.instr_count),
        );
    }

    let threads = rayon::current_num_threads();
    let started = std::time::Instant::now();
    let (mode, cells, rendered) = if scenario_mode {
        // Machine axis: named presets × DRAM latency variants.
        let machine_names = parse_list(machines_arg, &["table2"]);
        let mut machines = Vec::new();
        for name in &machine_names {
            let base = match MachineConfig::preset(name) {
                Some(m) => m,
                None => fail(format!("unknown machine preset {name:?} (try table2, small)")),
            };
            match &dram_arg {
                None => machines.push(base),
                Some(list) => {
                    for token in list.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                        let cycles: u64 = match token.parse() {
                            Ok(c) => c,
                            Err(_) => fail(format!("bad --dram-latency value {token:?}")),
                        };
                        machines.push(base.clone().with_dram_latency(cycles));
                    }
                }
            }
        }
        let mut prefetchers = Vec::new();
        for name in parse_list(prefetchers_arg, &["none"]) {
            match PrefetcherKind::parse(&name) {
                Some(kind) => prefetchers.push(kind),
                None => fail(format!(
                    "unknown prefetcher {name:?} (try none, nextline, stride, stride<N>)"
                )),
            }
        }

        let grid = ScenarioGrid { policies, streams, machines, prefetchers, mlp_override: None };
        eprintln!(
            "[sweep_grid] {} policies x {} workloads x {} machines x {} prefetchers = {} cells \
             at {:?} scale on {} worker(s)",
            grid.policies.len(),
            grid.streams.len(),
            grid.machines.len(),
            grid.prefetchers.len(),
            grid.cells(),
            scale,
            threads,
        );
        for machine in &grid.machines {
            eprintln!("[sweep_grid]   machine {}", machine.machine_label());
        }
        let report = match grid.run(cachemind_policies::by_name) {
            Ok(report) => report,
            Err(err) => fail(err.to_string()),
        };
        let rendered = if json {
            serde_json::to_string_pretty(&report).expect("report serializes")
        } else {
            report.to_table()
        };
        ("scenario", report.cells.len(), rendered)
    } else {
        let mut grid = SweepGrid::default();
        grid.policies = policies;
        grid.streams = streams;
        grid.configs = default_configs(scale);
        eprintln!(
            "[sweep_grid] {} policies x {} workloads x {} configs = {} cells at {:?} scale on {} worker(s)",
            grid.policies.len(),
            grid.streams.len(),
            grid.configs.len(),
            grid.cells(),
            scale,
            threads,
        );
        for cfg in &grid.configs {
            eprintln!(
                "[sweep_grid]   config {}: {} KB, {} sets, {} ways",
                config_label(cfg),
                cfg.capacity_bytes() / 1024,
                cfg.sets(),
                cfg.ways,
            );
        }
        let report = match grid.run(cachemind_policies::by_name) {
            Ok(report) => report,
            Err(err) => fail(err.to_string()),
        };
        let rendered = if json {
            serde_json::to_string_pretty(&report).expect("report serializes")
        } else {
            report.to_table()
        };
        ("llc", report.cells.len(), rendered)
    };
    let wall = started.elapsed();
    eprintln!("[sweep_grid] swept {cells} cells in {wall:?}");

    if json {
        println!("{rendered}");
    } else {
        print!("{rendered}");
    }

    if let Some(path) = bench_json {
        let timing = if no_timing { None } else { Some(wall) };
        let record = bench_record(mode, cells, if no_timing { 0 } else { threads }, scale, timing);
        if let Err(err) = std::fs::write(&path, format!("{record}\n")) {
            fail(format!("cannot write {path}: {err}"));
        }
        eprintln!("[sweep_grid] wrote bench record to {path}");
    }
}
