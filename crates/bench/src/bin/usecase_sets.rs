//! §6.3 use case: hot/cold cache-set identification on astar (Figure 13).

use cachemind_core::insights::set_hotness;

fn main() {
    let scale = cachemind_bench::scale_from_env();
    let report = set_hotness::run(scale);

    println!("Use case — set-hotness analysis ({} workload)", report.workload);
    cachemind_bench::rule(72);
    println!("{}", report.transcript);
    cachemind_bench::rule(72);
    for p in &report.profiles {
        println!(
            "{:<8} hot sets {:?} (hit rate {:.1}%)   cold sets {:?} (hit rate {:.1}%)",
            p.policy,
            p.hot_sets,
            p.hot_hit_rate * 100.0,
            p.cold_sets,
            p.cold_hit_rate * 100.0
        );
    }
    println!("Hot-set overlap between LRU and Belady: {}/5", report.hot_overlap);
    for cell in &report.cells {
        println!(
            "{:<8} whole-trace hit rate {:.2}%, IPC {:.4} (machine {})",
            cell.policy,
            cell.hit_rate * 100.0,
            cell.ipc,
            report.machine
        );
    }
    println!(
        "\nPaper reference: hot-set identity overlaps across policies; Belady amplifies \
         hotness by avoiding premature evictions."
    );
}
