//! Figure 4: accuracy of CacheMind with five LLM backends across the eleven
//! CacheMindBench categories (Sieve retrieval held fixed).

use cachemind_benchsuite::catalog::Catalog;
use cachemind_core::eval;

fn main() {
    let db = cachemind_bench::load_db();
    let catalog = Catalog::generate(&db);
    let fig = eval::figure4(&db, &catalog);

    println!("Figure 4 — accuracy by category x backend (Sieve retrieval)");
    cachemind_bench::rule(110);
    print!("{:<28}", "Category");
    for b in &fig.backends {
        print!(" {b:>16}");
    }
    println!();
    cachemind_bench::rule(110);
    for (label, values) in &fig.rows {
        print!("{label:<28}");
        for v in values {
            print!(" {:>16}", cachemind_bench::pct(*v));
        }
        println!();
    }
    cachemind_bench::rule(110);
    print!("{:<28}", "Total (weighted)");
    for t in &fig.totals {
        print!(" {:>16}", cachemind_bench::pct(*t));
    }
    println!();
    println!(
        "\nPaper reference: GPT-4o best overall (74.9%), then o3 (64.8%), finetuned 4o-mini \
         (62.7%), GPT-3.5 (60.0%); Count = 0% everywhere; trick robustness only for the \
         4o family."
    );
}
