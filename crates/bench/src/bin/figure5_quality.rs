//! Figure 5: reasoning accuracy across retrieval-context quality
//! (Low/Medium/High) for each backend. "Retrieval quality is the
//! precondition for cache replacement policy high level reasoning."
//!
//! The per-backend harness runs ride the sweep engine
//! (`cachemind_sim::sweep::sweep_cells` inside `eval::figure5`), so the
//! five backends evaluate in parallel instead of replaying serially; the
//! printed table is byte-identical for any `RAYON_NUM_THREADS`.

use cachemind_benchsuite::catalog::Catalog;
use cachemind_core::eval;

fn main() {
    let db = cachemind_bench::load_db();
    let catalog = Catalog::generate(&db);
    let fig = eval::figure5(&db, &catalog);

    println!("Figure 5 — accuracy vs retrieval-context quality (controlled degradation)");
    cachemind_bench::rule(72);
    println!("{:<22} {:>12} {:>12} {:>12}", "Backend", "Low", "Medium", "High");
    cachemind_bench::rule(72);
    let mut sums = [0.0f64; 3];
    for (backend, [low, mid, high]) in &fig.rows {
        println!(
            "{backend:<22} {:>12} {:>12} {:>12}",
            cachemind_bench::pct(*low),
            cachemind_bench::pct(*mid),
            cachemind_bench::pct(*high)
        );
        sums[0] += low;
        sums[1] += mid;
        sums[2] += high;
    }
    cachemind_bench::rule(72);
    let n = fig.rows.len() as f64;
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "Average",
        cachemind_bench::pct(sums[0] / n),
        cachemind_bench::pct(sums[1] / n),
        cachemind_bench::pct(sums[2] / n)
    );
    println!(
        "\nPaper reference: accuracy rises monotonically with retrieval quality for every backend."
    );
}
