//! Shared helpers for the CacheMind benchmark-harness binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md's per-experiment index). The trace database scale is
//! controlled by the `CACHEMIND_SCALE` environment variable
//! (`tiny` | `small` | `full`, default `small`).

use cachemind_tracedb::database::{TraceDatabase, TraceDatabaseBuilder};
use cachemind_workloads::workload::Scale;

/// The scale selected through `CACHEMIND_SCALE` (default: `Small`).
pub fn scale_from_env() -> Scale {
    match std::env::var("CACHEMIND_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("full") => Scale::Full,
        _ => Scale::Small,
    }
}

/// Builds the evaluation database at the configured scale.
pub fn load_db() -> TraceDatabase {
    let scale = scale_from_env();
    eprintln!("[cachemind-bench] building trace database at {scale:?} scale ...");
    let db = TraceDatabaseBuilder::new().scale(scale).build();
    let total_rows: usize = db.entries().map(|e| e.frame.len()).sum();
    eprintln!("[cachemind-bench] database ready: {} traces, {} rows total", db.len(), total_rows);
    db
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a percentage cell.
pub fn pct(v: f64) -> String {
    format!("{v:6.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_fixed_width() {
        assert_eq!(pct(7.5), "  7.50%");
    }

    #[test]
    fn scale_parsing_handles_variants() {
        // Avoid mutating the process environment (tests run in parallel):
        // exercise only the default path plus the match arms indirectly.
        let s = scale_from_env();
        assert!(matches!(s, Scale::Tiny | Scale::Small | Scale::Full));
    }
}
