//! Criterion micro-benchmarks: replacement-policy replay cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cachemind_policies::by_name;
use cachemind_sim::config::CacheConfig;
use cachemind_sim::replay::LlcReplay;
use cachemind_workloads::workload::Scale;

fn bench_policies(c: &mut Criterion) {
    let workload = cachemind_workloads::mcf::generate(Scale::Tiny);
    let llc = CacheConfig::new("LLC", 8, 8, 6);
    let replay = LlcReplay::new(llc, &workload.accesses);

    let mut group = c.benchmark_group("policy_replay");
    group.throughput(Throughput::Elements(workload.accesses.len() as u64));
    for name in ["lru", "belady", "srrip", "ship", "hawkeye", "mockingjay", "parrot", "mlp"] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| replay.run(by_name(name).expect("known policy")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
