//! Criterion micro-benchmarks: retrieval latency per retriever (the
//! Figure 9 latency column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cachemind_lang::intent::QueryIntent;
use cachemind_retrieval::dense::DenseIndexRetriever;
use cachemind_retrieval::ranger::RangerRetriever;
use cachemind_retrieval::retriever::Retriever;
use cachemind_retrieval::sieve::SieveRetriever;
use cachemind_tracedb::database::TraceDatabaseBuilder;

fn bench_retrievers(c: &mut Criterion) {
    let db = TraceDatabaseBuilder::quick_demo().build();
    let entry = db.get("mcf_evictions_lru").expect("trace");
    let row = entry.frame.rows()[10].clone();
    let question = format!(
        "Does the memory access with PC {} and address {} result in a cache hit or miss \
         for the mcf workload and LRU replacement policy?",
        row.pc, row.address
    );
    let workloads = db.workloads();
    let policies = db.policies();
    let intent = QueryIntent::parse(
        &question,
        &workloads.iter().map(String::as_str).collect::<Vec<_>>(),
        &policies.iter().map(String::as_str).collect::<Vec<_>>(),
    );

    let sieve = SieveRetriever::new();
    let ranger = RangerRetriever::new();
    let dense = DenseIndexRetriever::build(&db, 4);

    let mut group = c.benchmark_group("retrieval_latency");
    group.bench_function(BenchmarkId::new("sieve", "hitmiss"), |b| {
        b.iter(|| sieve.retrieve(&db, &intent))
    });
    group.bench_function(BenchmarkId::new("ranger", "hitmiss"), |b| {
        b.iter(|| ranger.retrieve(&db, &intent))
    });
    group.bench_function(BenchmarkId::new("dense", "hitmiss"), |b| {
        b.iter(|| dense.retrieve(&db, &intent))
    });
    group.finish();
}

fn bench_intent_parsing(c: &mut Criterion) {
    let q = "Which policy has the lowest miss rate for PC 0x409270 in astar?";
    c.bench_function("intent_parse", |b| {
        b.iter(|| {
            QueryIntent::parse(q, &["astar", "lbm", "mcf"], &["belady", "lru", "mlp", "parrot"])
        })
    });
}

criterion_group!(benches, bench_retrievers, bench_intent_parsing);
criterion_main!(benches);
