//! Criterion micro-benchmarks: simulator throughput (hierarchy filtering
//! and LLC replay).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use cachemind_sim::config::{CacheConfig, HierarchyConfig};
use cachemind_sim::hierarchy::CacheHierarchy;
use cachemind_sim::replacement::RecencyPolicy;
use cachemind_sim::replay::LlcReplay;
use cachemind_workloads::workload::Scale;

fn bench_llc_replay(c: &mut Criterion) {
    let workload = cachemind_workloads::mcf::generate(Scale::Tiny);
    let llc = CacheConfig::new("LLC", 8, 8, 6);
    let replay = LlcReplay::new(llc, &workload.accesses);

    let mut group = c.benchmark_group("llc_replay");
    group.throughput(Throughput::Elements(workload.accesses.len() as u64));
    group.bench_function("lru_annotated", |b| b.iter(|| replay.run(RecencyPolicy::lru())));
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let workload = cachemind_workloads::lbm::generate(Scale::Tiny);
    let mut group = c.benchmark_group("hierarchy");
    group.throughput(Throughput::Elements(workload.accesses.len() as u64));
    group.bench_function("three_level_filter", |b| {
        b.iter(|| {
            let mut h = CacheHierarchy::new(HierarchyConfig::small());
            h.run(&workload.accesses, workload.instr_count)
        })
    });
    group.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let workload = cachemind_workloads::astar::generate(Scale::Tiny);
    let mut group = c.benchmark_group("reuse_oracle");
    group.throughput(Throughput::Elements(workload.accesses.len() as u64));
    group.bench_function("build", |b| {
        b.iter(|| cachemind_sim::reuse::ReuseOracle::from_accesses(&workload.accesses, 6))
    });
    group.finish();
}

criterion_group!(benches, bench_llc_replay, bench_hierarchy, bench_oracle);
criterion_main!(benches);
