//! Criterion ablations for the design choices DESIGN.md calls out:
//! Sieve semantic matching, Ranger schema card, dense-embedding
//! dimensionality, and record history length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cachemind_lang::embed::HashedEmbedder;
use cachemind_lang::intent::QueryIntent;
use cachemind_retrieval::ranger::RangerRetriever;
use cachemind_retrieval::retriever::Retriever;
use cachemind_retrieval::sieve::SieveRetriever;
use cachemind_sim::config::CacheConfig;
use cachemind_sim::replacement::RecencyPolicy;
use cachemind_sim::replay::LlcReplay;
use cachemind_tracedb::database::TraceDatabaseBuilder;
use cachemind_workloads::workload::Scale;

fn ablation_sieve_semantic(c: &mut Criterion) {
    let db = TraceDatabaseBuilder::quick_demo().build();
    let q = "What is the overall miss rate of the mcf workload under LRU?";
    let workloads = db.workloads();
    let policies = db.policies();
    let intent = QueryIntent::parse(
        q,
        &workloads.iter().map(String::as_str).collect::<Vec<_>>(),
        &policies.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut group = c.benchmark_group("sieve_semantic");
    let with = SieveRetriever::new();
    let without = SieveRetriever::new().without_semantic();
    group.bench_function("on", |b| b.iter(|| with.retrieve(&db, &intent)));
    group.bench_function("off", |b| b.iter(|| without.retrieve(&db, &intent)));
    group.finish();
}

fn ablation_ranger_schema(c: &mut Criterion) {
    let db = TraceDatabaseBuilder::quick_demo().build();
    let q = "What is the average evicted reuse distance for the lbm workload with LRU?";
    let workloads = db.workloads();
    let policies = db.policies();
    let intent = QueryIntent::parse(
        q,
        &workloads.iter().map(String::as_str).collect::<Vec<_>>(),
        &policies.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut group = c.benchmark_group("ranger_schema");
    let with = RangerRetriever::new();
    let without = RangerRetriever::new().without_schema();
    group.bench_function("on", |b| b.iter(|| with.retrieve(&db, &intent)));
    group.bench_function("off", |b| b.iter(|| without.retrieve(&db, &intent)));
    group.finish();
}

fn ablation_embedding_dims(c: &mut Criterion) {
    let text = "TRACE_ID: astar_evictions_lru program_counter=0x409538 \
                memory_address=0x2bfd401b693 evict=Cache Miss";
    let mut group = c.benchmark_group("embedding_dims");
    for dims in [16usize, 64, 256] {
        let embedder = HashedEmbedder::new(dims);
        group
            .bench_function(BenchmarkId::from_parameter(dims), |b| b.iter(|| embedder.embed(text)));
    }
    group.finish();
}

fn ablation_history_len(c: &mut Criterion) {
    let workload = cachemind_workloads::ptrchase::generate(Scale::Tiny);
    let mut group = c.benchmark_group("record_history_len");
    for len in [2usize, 8, 32] {
        let replay = LlcReplay::new(CacheConfig::new("LLC", 8, 8, 6), &workload.accesses)
            .with_history_len(len);
        group.bench_function(BenchmarkId::from_parameter(len), |b| {
            b.iter(|| replay.run(RecencyPolicy::lru()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_sieve_semantic,
    ablation_ranger_schema,
    ablation_embedding_dims,
    ablation_history_len
);
criterion_main!(benches);
