//! `astar` — branchy grid pathfinding.
//!
//! SPEC 473.astar runs A* searches over a 2-D map: spatially-local map
//! reads (a random walk of the frontier), a priority-queue working set with
//! skewed reuse, and a small bound array with very strong reuse. The
//! paper's examples repeatedly probe astar PCs (e.g. the
//! `_ZN7way2obj11createwayarERP6pointtRi` symbol in Fig. 9) and use astar
//! for the set-hotness use case.

use rand::Rng;

use crate::kernels::{zipf, StreamBuilder, LINE};
use crate::program::ProgramBuilder;
use crate::workload::{Scale, Workload};

const MAP_REGION: u64 = 0x7000_0000;
const HEAP_REGION: u64 = 0x7800_0000;
const BOUND_REGION: u64 = 0x7C00_0000;

/// Map size: 128 x 128 cells, 4 cells per line -> 4096 lines.
const MAP_DIM: u64 = 128;
const CELLS_PER_LINE: u64 = 4;
/// Priority-queue working set in lines.
const HEAP_LINES: u64 = 512;
/// Bound array in lines (hot).
const BOUND_LINES: u64 = 64;

fn map_addr(x: u64, y: u64) -> u64 {
    let cell = y * MAP_DIM + x;
    MAP_REGION + (cell / CELLS_PER_LINE) * LINE + (cell % CELLS_PER_LINE) * 16
}

/// Generates the synthetic astar workload.
pub fn generate(scale: Scale) -> Workload {
    let mut pb = ProgramBuilder::new(0x409200);
    let map_pcs = pb.function(
        "_ZN7way2obj11createwayarERP6pointtRi",
        "while (wayar[p.y][p.x].fill == false) {\n    p = wayar[p.y][p.x].parent;\n    createwayar(p, rez);\n}",
        &[
            "mov (%r12,%rbx,4),%eax",
            "movzbl 0x2(%r12,%rbx,4),%edx",
            "test %dl,%dl",
            "je 409290 <_ZN7way2obj11createwayarERP6pointtRi+0x90>",
        ],
    );
    let heap_pcs = pb.function(
        "_ZN9regwayobj10makebound2ERSt6vectorIP6regobjSaIS2_EES6_",
        "for (i=0; i < bound1.size(); i++) {\n    rbp = bound1[i];\n    for (int t=0; t < rbp->neighbournum; t++) {\n        rbn = rbp->neighbours[t];\n    }\n}",
        &[
            "mov (%r14,%r13,8),%rdi",
            "mov 0x18(%rdi),%eax",
            "mov 0x20(%rdi,%rcx,8),%rsi",
        ],
    );
    let bound_pcs = pb.function(
        "_ZN6wayobj10makebound1EPiiS0_",
        "for (i=0; i<boundl; ++i) {\n    x = boundar[i] & 0xFFFF;\n    y = boundar[i] >> 16;\n}",
        &["mov (%rdi,%rax,4),%ecx", "and $0xffff,%ecx"],
    );
    let program = pb.build();

    let map_load = map_pcs[0];
    let map_flag = map_pcs[1];
    let heap_load = heap_pcs[0];
    let heap_neighbor = heap_pcs[2];
    let bound_load = bound_pcs[0];

    let mut b = StreamBuilder::new(0x6173_7400); // "ast"
    let (mut x, mut y) = (MAP_DIM / 2, MAP_DIM / 2);
    let searches = 200 * scale.factor();
    for s in 0..searches {
        // Frontier walk: 6 spatially-local map reads.
        for _ in 0..6 {
            let dx: i64 = b.rng().gen_range(-1..=1);
            let dy: i64 = b.rng().gen_range(-1..=1);
            x = (x as i64 + dx).clamp(0, MAP_DIM as i64 - 1) as u64;
            y = (y as i64 + dy).clamp(0, MAP_DIM as i64 - 1) as u64;
            b.load(map_load, map_addr(x, y));
            if b.rng().gen_bool(0.4) {
                b.load(map_flag, map_addr(x, y) + 2);
            }
        }
        // Occasionally jump the frontier (new search region).
        if s % 64 == 63 {
            x = b.rng().gen_range(0..MAP_DIM);
            y = b.rng().gen_range(0..MAP_DIM);
        }
        // Priority queue: skewed reuse over the heap region.
        for _ in 0..3 {
            let h = zipf(b.rng(), HEAP_LINES, 1.4);
            b.load(heap_load, HEAP_REGION + h * LINE);
        }
        let h = zipf(b.rng(), HEAP_LINES, 1.4);
        b.load(heap_neighbor, HEAP_REGION + h * LINE + 32);
        // Bound array: hot, sequential in a tiny region.
        for k in 0..2 {
            b.load(bound_load, BOUND_REGION + ((s + k) % BOUND_LINES) * LINE);
        }
    }

    let (accesses, instr_count) = b.finish();
    Workload {
        name: "astar".to_owned(),
        description: "SPEC 473.astar-like A* pathfinding: spatially-local map \
                      reads in way2obj::createwayar, skewed priority-queue \
                      reuse in regwayobj::makebound2, and a hot bound array — \
                      mixed locality with pronounced hot/cold cache sets."
            .to_owned(),
        program,
        accesses,
        instr_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;

    fn llc() -> CacheConfig {
        CacheConfig::new("LLC", 8, 8, 6)
    }

    #[test]
    fn astar_has_moderate_hit_rate() {
        let w = generate(Scale::Small);
        let replay = LlcReplay::new(llc(), &w.accesses);
        let report = replay.run(RecencyPolicy::lru());
        let hr = report.hit_rate();
        assert!(hr > 0.35 && hr < 0.95, "astar LRU hit rate {hr}");
    }

    #[test]
    fn set_usage_is_skewed() {
        // The set-hotness use case needs genuinely hot and cold sets.
        let w = generate(Scale::Small);
        let replay = LlcReplay::new(llc(), &w.accesses);
        let report = replay.run(RecencyPolicy::lru());
        let mut per_set = std::collections::HashMap::new();
        for r in &report.records {
            *per_set.entry(r.set.index()).or_insert(0u64) += 1;
        }
        let max = per_set.values().max().copied().unwrap();
        let min = per_set.values().min().copied().unwrap();
        assert!(max >= 2 * min.max(1), "set skew max {max} min {min}");
    }

    #[test]
    fn mangled_symbol_is_resolvable() {
        let w = generate(Scale::Tiny);
        let pc =
            w.accesses.iter().map(|a| a.pc).find(|&pc| {
                w.program.function_of(pc).is_some_and(|f| f.name.contains("createwayar"))
            });
        assert!(pc.is_some());
    }
}
