//! Generic access-pattern kernels and the [`StreamBuilder`] shared by all
//! workload generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cachemind_sim::access::{AccessKind, MemoryAccess};
use cachemind_sim::addr::{Address, Pc};

/// Cache-line size assumed by the generators (64 B).
pub const LINE: u64 = 64;

/// Incrementally builds an access stream with a running instruction counter.
#[derive(Debug)]
pub struct StreamBuilder {
    accesses: Vec<MemoryAccess>,
    instr: u64,
    rng: StdRng,
}

impl StreamBuilder {
    /// Creates a builder with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        StreamBuilder { accesses: Vec::new(), instr: 0, rng: StdRng::seed_from_u64(seed) }
    }

    /// The builder's RNG (for generator-specific randomness).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Advances the instruction counter by a plausible amount of non-memory
    /// work (3–9 instructions).
    pub fn work(&mut self) {
        self.instr += self.rng.gen_range(3..10);
    }

    /// Emits a load at `pc` for byte address `addr`.
    pub fn load(&mut self, pc: Pc, addr: u64) {
        self.work();
        self.accesses.push(MemoryAccess::load(pc, Address::new(addr), self.instr));
    }

    /// Emits a store at `pc` for byte address `addr`.
    pub fn store(&mut self, pc: Pc, addr: u64) {
        self.work();
        self.accesses.push(MemoryAccess::store(pc, Address::new(addr), self.instr));
    }

    /// Emits a software prefetch at `pc` for byte address `addr` (does not
    /// advance the instruction counter by a full work quantum: prefetches
    /// are single instructions).
    pub fn prefetch(&mut self, pc: Pc, addr: u64) {
        self.instr += 1;
        self.accesses.push(MemoryAccess {
            pc,
            address: Address::new(addr),
            kind: AccessKind::Prefetch,
            instr_index: self.instr,
        });
    }

    /// Finishes the stream, returning `(accesses, instr_count)`.
    pub fn finish(self) -> (Vec<MemoryAccess>, u64) {
        (self.accesses, self.instr)
    }

    /// Current instruction count.
    pub fn instr_count(&self) -> u64 {
        self.instr
    }
}

/// Samples an approximately Zipf-distributed index in `[0, n)`.
///
/// Uses inverse-power sampling: heavier skew for larger `s`.
pub fn zipf(rng: &mut StdRng, n: u64, s: f64) -> u64 {
    debug_assert!(n > 0);
    let u: f64 = rng.gen_range(1e-9..1.0f64);
    let idx = (n as f64 * u.powf(s)) as u64;
    idx.min(n - 1)
}

/// A sequential scan over `lines` cache lines starting at `base`, emitted
/// through `pc`.
pub fn sequential_scan(b: &mut StreamBuilder, pc: Pc, base: u64, lines: u64) {
    for i in 0..lines {
        b.load(pc, base + i * LINE);
    }
}

/// A strided walk (`stride` in lines) of `count` accesses.
pub fn strided_walk(b: &mut StreamBuilder, pc: Pc, base: u64, stride: u64, count: u64) {
    for i in 0..count {
        b.load(pc, base + i * stride * LINE);
    }
}

/// `count` uniform-random line touches within a `lines`-sized region.
pub fn random_touches(b: &mut StreamBuilder, pc: Pc, base: u64, lines: u64, count: u64) {
    for _ in 0..count {
        let l = b.rng().gen_range(0..lines);
        b.load(pc, base + l * LINE);
    }
}

/// Builds a shuffled ring permutation of `n` nodes (a derangement-style
/// cycle covering all nodes), used by pointer-chasing generators.
pub fn shuffled_ring(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    // next[order[i]] = order[i+1]: one big cycle.
    let mut next = vec![0; n];
    for i in 0..n {
        next[order[i]] = order[(i + 1) % n];
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts_instructions() {
        let mut b = StreamBuilder::new(1);
        b.load(Pc::new(1), 0);
        b.store(Pc::new(1), 64);
        let (accesses, instr) = b.finish();
        assert_eq!(accesses.len(), 2);
        assert!(instr >= 6);
    }

    #[test]
    fn zipf_is_skewed_toward_low_indices() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 1000u64;
        let samples: Vec<u64> = (0..10_000).map(|_| zipf(&mut rng, n, 3.0)).collect();
        // With s = 3, P(idx < n/10) = P(u < 0.1^(1/3)) ≈ 46%; a uniform
        // distribution would put only 10% there.
        let low = samples.iter().filter(|&&x| x < n / 10).count();
        assert!(low > samples.len() * 4 / 10, "low-decile share {low}");
        assert!(samples.iter().all(|&x| x < n));
    }

    #[test]
    fn shuffled_ring_is_one_cycle() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 257;
        let next = shuffled_ring(&mut rng, n);
        let mut seen = vec![false; n];
        let mut cur = 0;
        for _ in 0..n {
            assert!(!seen[cur], "revisited before covering the ring");
            seen[cur] = true;
            cur = next[cur];
        }
        assert_eq!(cur, 0, "must return to start after n steps");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn scan_touches_distinct_lines() {
        let mut b = StreamBuilder::new(3);
        sequential_scan(&mut b, Pc::new(9), 0x1000, 16);
        let (accesses, _) = b.finish();
        let lines: std::collections::HashSet<u64> =
            accesses.iter().map(|a| a.address.value() / LINE).collect();
        assert_eq!(lines.len(), 16);
    }
}
