//! `milc` — staggered-lattice QCD sweeps.
//!
//! SPEC 433.milc performs SU(3) matrix operations over a 4-D lattice in
//! regular sweeps with phase behaviour. The paper uses milc for the
//! Mockingjay use case ("we chose milc because Mockingjay does worse than
//! Hawkeye" there): its per-PC reuse distances split into *stable* PCs
//! (regular sweep strides, low reuse-distance variance) and *noisy* PCs
//! (gauge-link gathers with erratic reuse), which is exactly the property
//! the stable-PC RDP training exploits.

use crate::kernels::{zipf, StreamBuilder, LINE};
use crate::program::ProgramBuilder;
use crate::workload::{Scale, Workload};

const LATTICE: u64 = 0x9000_0000;
const GAUGE: u64 = 0x9800_0000;
const TEMP: u64 = 0x9C00_0000;

/// Lattice size in lines (bigger than the LLC).
const LATTICE_LINES: u64 = 4096;
/// Gauge-link region in lines.
const GAUGE_LINES: u64 = 1024;
/// Temporary buffers in lines (hot).
const TEMP_LINES: u64 = 48;

/// Generates the synthetic milc workload.
pub fn generate(scale: Scale) -> Workload {
    let mut pb = ProgramBuilder::new(0x413900);
    let site_pcs = pb.function(
        "mult_su3_na",
        "for(i=0;i<3;i++) for(j=0;j<3;j++) {\n    cc.real = a->e[i][0].real * b->e[j][0].real;\n    c->e[i][j] = cc;\n}",
        &[
            "movsd (%rdi,%rax,8),%xmm0",
            "mulsd (%rsi,%rax,8),%xmm0",
            "movsd %xmm0,(%rdx,%rax,8)",
        ],
    );
    let gather_pcs = pb.function(
        "dslash_fn_site",
        "FORSOMEPARITY(i,s,parity) {\n    mult_su3_mat_vec( &(s->link[XUP]), (su3_vector *)F_PT(s,src), &(s->tempvec[XUP]) );\n}",
        &["mov (%r9,%r10,8),%rax", "movsd 0x40(%rax),%xmm4"],
    );
    let temp_pcs = pb.function(
        "scalar_mult_add_su3_vector",
        "for(i=0;i<3;i++) {\n    c->c[i].real = a->c[i].real + s * b->c[i].real;\n}",
        &["movsd (%rcx),%xmm1", "addsd %xmm5,%xmm1", "movsd %xmm1,(%r11)"],
    );
    let program = pb.build();

    // Stable PCs: the regular sweep (site load + store, temp buffer).
    let site_load = site_pcs[0];
    let site_store = site_pcs[2];
    let temp_load = temp_pcs[0];
    let temp_store = temp_pcs[2];
    // Noisy PC: the gauge-link gather.
    let gauge_load = gather_pcs[0];

    let mut b = StreamBuilder::new(0x6D69_6C63); // "milc"
    let sweeps = 3 * scale.factor();
    let chunk = LATTICE_LINES / 4;
    for sweep in 0..sweeps {
        let base = (sweep % 4) * chunk;
        for i in 0..chunk {
            let line = base + i;
            // Stable: regular strided sweep over lattice sites.
            b.load(site_load, LATTICE + line * LINE);
            if i % 2 == 0 {
                b.store(site_store, LATTICE + line * LINE + 24);
            }
            // Stable: hot temp buffer.
            if i % 4 == 0 {
                let t = i % TEMP_LINES;
                b.load(temp_load, TEMP + t * LINE);
                b.store(temp_store, TEMP + t * LINE + 8);
            }
            // Noisy: skewed gauge-link gathers with erratic reuse (hot links
            // reused quickly, cold links after very long intervals).
            if i % 3 == 0 {
                let g = zipf(b.rng(), GAUGE_LINES, 2.0);
                b.load(gauge_load, GAUGE + g * LINE);
            }
        }
    }

    let (accesses, instr_count) = b.finish();
    Workload {
        name: "milc".to_owned(),
        description: "SPEC 433.milc-like lattice QCD: regular staggered sweeps \
                      in mult_su3_na (stable reuse distances) mixed with \
                      erratic gauge-link gathers in dslash_fn_site (noisy \
                      reuse) — the Mockingjay stable-PC training target."
            .to_owned(),
        program,
        accesses,
        instr_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;
    use std::collections::HashMap;

    #[test]
    fn sweep_pcs_have_lower_reuse_variance_than_gather_pcs() {
        let w = generate(Scale::Small);
        let replay = LlcReplay::new(CacheConfig::new("LLC", 8, 8, 6), &w.accesses);
        let report = replay.run(RecencyPolicy::lru());
        // Per-PC reuse-distance variance.
        let mut samples: HashMap<u64, Vec<f64>> = HashMap::new();
        for r in &report.records {
            if let Some(d) = r.accessed_reuse_distance {
                samples.entry(r.pc.value()).or_default().push(d as f64);
            }
        }
        let cv = |v: &[f64]| {
            let n = v.len() as f64;
            let mean = v.iter().sum::<f64>() / n;
            let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            var.sqrt() / mean.max(1.0)
        };
        let pc_of = |func: &str| {
            w.program.functions().iter().find(|f| f.name == func).unwrap().base_pc.value()
        };
        let stable = samples.get(&pc_of("scalar_mult_add_su3_vector")).expect("temp PC sampled");
        let gauge = samples.get(&pc_of("dslash_fn_site")).expect("gauge PC sampled");
        assert!(stable.len() > 50 && gauge.len() > 50);
        assert!(
            cv(stable) < cv(gauge),
            "stable cv {} should be below gauge cv {}",
            cv(stable),
            cv(gauge)
        );
    }
}
