//! `lbm` — lattice-Boltzmann streaming stencil.
//!
//! SPEC 470.lbm sweeps a large grid every timestep (pure streaming) while a
//! much smaller set of boundary/obstacle cells is revisited constantly. The
//! paper's analysis of lbm (§6.3, Fig. 11) hinges on exactly this
//! interleaving: "interleaved streaming accesses push useful lines to LRU
//! positions long before reuse", which is why PC-signature policies (SHiP)
//! beat recency policies and why Belady's advantage concentrates on the
//! boundary PCs.

use crate::kernels::{zipf, StreamBuilder, LINE};
use crate::program::ProgramBuilder;
use crate::workload::{Scale, Workload};

const SRC_GRID: u64 = 0x4000_0000;
const DST_GRID: u64 = 0x5000_0000;
const BOUNDARY: u64 = 0x6000_0000;

/// Grid size in cache lines per copy (≫ LLC: the scan generator).
const GRID_LINES: u64 = 6144;
/// Boundary-cell region in lines (the reusable working set).
const BOUNDARY_LINES: u64 = 192;
/// Scan steps between boundary-cell bursts.
const BOUNDARY_PERIOD: u64 = 24;

/// Generates the synthetic lbm workload.
pub fn generate(scale: Scale) -> Workload {
    let mut pb = ProgramBuilder::new(0x404a20);
    let stream_pcs = pb.function(
        "LBM_performStreamCollide",
        "for( i = 0; i < SIZE; i += 1 ) {\n    rho = SRC_C(i) + SRC_N(i) + SRC_S(i);\n    DST_C(i) = rho * (1.0 - OMEGA);\n}",
        &[
            "movsd (%rsi,%rax,8),%xmm0",
            "addsd 0x8(%rsi,%rax,8),%xmm0",
            "mulsd %xmm2,%xmm0",
            "movsd %xmm0,(%rdi,%rax,8)",
        ],
    );
    let boundary_pcs = pb.function(
        "LBM_handleInOutFlow",
        "if( TEST_FLAG_SWEEP( srcGrid, OBSTACLE )) {\n    ux = LOCAL_UX( boundary[cell] );\n}",
        &["mov (%rdx,%rcx,8),%rax", "movsd 0x10(%rax),%xmm1", "ucomisd %xmm3,%xmm1"],
    );
    let program = pb.build();

    let scan_load = stream_pcs[0];
    let scan_load2 = stream_pcs[1];
    let scan_store = stream_pcs[3];
    let boundary_load = boundary_pcs[0];
    let boundary_load2 = boundary_pcs[1];

    let mut b = StreamBuilder::new(0x6C62_6D00); // "lbm"
    let timesteps = 2 * scale.factor();
    let step_lines = GRID_LINES / 8; // partial sweep per generated timestep chunk
    for t in 0..timesteps {
        let sweep_base = (t % 8) * step_lines;
        for i in 0..step_lines {
            let line = sweep_base + i;
            // Streaming: read source cell (+ neighbour), write destination.
            b.load(scan_load, SRC_GRID + line * LINE);
            if i % 2 == 0 {
                b.load(scan_load2, SRC_GRID + (line + 1).min(GRID_LINES - 1) * LINE);
            }
            b.store(scan_store, DST_GRID + line * LINE);
            // Interleaved boundary handling: strong temporal reuse.
            if i % BOUNDARY_PERIOD == 0 {
                for _ in 0..3 {
                    let c = zipf(b.rng(), BOUNDARY_LINES, 1.2);
                    b.load(boundary_load, BOUNDARY + c * LINE);
                }
                let c = zipf(b.rng(), BOUNDARY_LINES, 1.2);
                b.load(boundary_load2, BOUNDARY + c * LINE);
            }
        }
    }

    let (accesses, instr_count) = b.finish();
    Workload {
        name: "lbm".to_owned(),
        description: "SPEC 470.lbm-like lattice-Boltzmann kernel: streaming \
                      sweeps of a 6K-line grid in LBM_performStreamCollide \
                      interleaved with heavily-reused boundary cells in \
                      LBM_handleInOutFlow — the scan-vs-reuse mix where \
                      recency policies fail."
            .to_owned(),
        program,
        accesses,
        instr_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_policies::ShipPolicy;
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;

    fn llc() -> CacheConfig {
        CacheConfig::new("LLC", 8, 8, 6)
    }

    #[test]
    fn ship_beats_lru_on_lbm() {
        // The paper: "This observation helps understand why PC-signature
        // based policies such as SHiP outperform their predecessor policies
        // like RRIP on lbm."
        let w = generate(Scale::Small);
        let replay = LlcReplay::new(llc(), &w.accesses);
        let ship = replay.run(ShipPolicy::new());
        let lru = replay.run(RecencyPolicy::lru());
        assert!(
            ship.stats.hit_rate() > lru.stats.hit_rate(),
            "ship {} vs lru {}",
            ship.stats.hit_rate(),
            lru.stats.hit_rate()
        );
    }

    #[test]
    fn boundary_pcs_have_higher_reuse_than_scan_pcs() {
        let w = generate(Scale::Small);
        let replay = LlcReplay::new(llc(), &w.accesses);
        let report = replay.run(RecencyPolicy::lru());
        let mut scan = (0u64, 0u64); // (sum reuse dist, count)
        let mut boundary = (0u64, 0u64);
        for r in &report.records {
            let func = w.program.function_of(r.pc).map(|f| f.name.as_str());
            if let Some(d) = r.accessed_reuse_distance {
                match func {
                    Some("LBM_performStreamCollide") => {
                        scan.0 += d;
                        scan.1 += 1;
                    }
                    Some("LBM_handleInOutFlow") => {
                        boundary.0 += d;
                        boundary.1 += 1;
                    }
                    _ => {}
                }
            }
        }
        assert!(scan.1 > 0 && boundary.1 > 0);
        let scan_avg = scan.0 as f64 / scan.1 as f64;
        let boundary_avg = boundary.0 as f64 / boundary.1 as f64;
        assert!(
            boundary_avg < scan_avg,
            "boundary avg reuse {boundary_avg} should be below scan {scan_avg}"
        );
    }
}
