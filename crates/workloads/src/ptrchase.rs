//! `ptrchase` — the pointer-chasing microbenchmark of the software-prefetch
//! use case (§6.3).
//!
//! The paper: "The benchmark is designed to generate misses from a single
//! dominant load instruction at an initially unknown PC, which is recovered
//! using CacheMind. [...] we modified the microbenchmark to insert a
//! built-in C software prefetch instruction that prefetches future addresses
//! in the pointer-chasing array according to the observed access pattern."
//!
//! [`generate`] builds the plain benchmark; [`generate_prefetched`] is the
//! "fixed" source with prefetches `distance` hops ahead.

use cachemind_sim::addr::Pc;

use crate::kernels::{shuffled_ring, StreamBuilder, LINE};
use crate::program::ProgramBuilder;
use crate::workload::{Scale, Workload};

const RING_REGION: u64 = 0xA000_0000;
const STACK_REGION: u64 = 0x7FFF_0000;

/// Ring size in cache lines (≫ LLC: every chase step misses).
const RING_LINES: usize = 6144;
/// Stack working set in lines (always hits).
const STACK_LINES: u64 = 8;

struct Pcs {
    chase: Pc,
    accum: Pc,
    prefetch: Pc,
}

fn build_program(with_prefetch: bool) -> (crate::program::ProgramImage, Pcs) {
    let mut pb = ProgramBuilder::new(0x400500);
    let source = if with_prefetch {
        "for (i = 0; i < N; i++) {\n    __builtin_prefetch(&ring[lookahead[i]]);\n    p = ring[p];\n    sum += weights[depth & 7];\n}"
    } else {
        "for (i = 0; i < N; i++) {\n    p = ring[p];\n    sum += weights[depth & 7];\n}"
    };
    let body: &[&str] = if with_prefetch {
        &[
            "prefetcht0 (%r8)",
            "mov (%rdi,%rax,8),%rax", // the chase load
            "add (%rsp,%rcx,8),%rbx", // stack accumulate
            "jne 400512 <chase+0x12>",
        ]
    } else {
        &["mov (%rdi,%rax,8),%rax", "add (%rsp,%rcx,8),%rbx", "jne 400512 <chase+0x12>"]
    };
    let pcs = pb.function("chase", source, body);
    let image = pb.build();
    let p = if with_prefetch {
        Pcs { prefetch: pcs[0], chase: pcs[1], accum: pcs[2] }
    } else {
        Pcs { prefetch: pcs[0], chase: pcs[0], accum: pcs[1] }
    };
    (image, p)
}

fn generate_inner(scale: Scale, prefetch_distance: Option<usize>) -> Workload {
    let (program, pcs) = build_program(prefetch_distance.is_some());
    let mut b = StreamBuilder::new(0x7074_7263); // "ptrc"
    let ring = shuffled_ring(b.rng(), RING_LINES);
    // Precompute chase order so prefetches can look ahead.
    let steps = (1200 * scale.factor()) as usize;
    let mut order = Vec::with_capacity(steps);
    let mut pos = 0usize;
    for _ in 0..steps {
        order.push(pos);
        pos = ring[pos];
    }
    for (i, &p) in order.iter().enumerate() {
        if let Some(d) = prefetch_distance {
            if let Some(&future) = order.get(i + d) {
                b.prefetch(pcs.prefetch, RING_REGION + future as u64 * LINE);
            }
        }
        b.load(pcs.chase, RING_REGION + p as u64 * LINE);
        // One stack access every three chase steps: the ~75% miss mix.
        if i % 3 == 0 {
            b.load(pcs.accum, STACK_REGION + (i as u64 % STACK_LINES) * LINE);
        }
    }

    let (accesses, instr_count) = b.finish();
    Workload {
        name: "ptrchase".to_owned(),
        description: "Pointer-chasing microbenchmark: one dominant load PC \
                      walking a shuffled 6K-line ring (every step an LLC \
                      miss) plus a tiny hot stack working set. The software-\
                      prefetch use case target."
            .to_owned(),
        program,
        accesses,
        instr_count,
    }
}

/// The plain (miss-dominated) microbenchmark.
pub fn generate(scale: Scale) -> Workload {
    generate_inner(scale, None)
}

/// The prefetch-fixed variant: a software prefetch is issued `distance`
/// chase steps ahead of each demand load, mirroring the paper's
/// `__builtin_prefetch` insertion.
///
/// # Panics
///
/// Panics if `distance` is zero (a zero-distance prefetch is the demand
/// load itself).
pub fn generate_prefetched(scale: Scale, distance: usize) -> Workload {
    assert!(distance > 0, "prefetch distance must be positive");
    let mut w = generate_inner(scale, Some(distance));
    w.name = "ptrchase_prefetch".to_owned();
    w.description.push_str(" (with software prefetching enabled)");
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::access::AccessKind;
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;
    use std::collections::HashMap;

    fn llc() -> CacheConfig {
        CacheConfig::new("LLC", 8, 8, 6)
    }

    #[test]
    fn one_pc_dominates_misses() {
        let w = generate(Scale::Small);
        let replay = LlcReplay::new(llc(), &w.accesses);
        let report = replay.run(RecencyPolicy::lru());
        let mut miss_by_pc: HashMap<u64, u64> = HashMap::new();
        for r in &report.records {
            if r.is_miss {
                *miss_by_pc.entry(r.pc.value()).or_insert(0) += 1;
            }
        }
        let total: u64 = miss_by_pc.values().sum();
        let max = miss_by_pc.values().max().copied().unwrap();
        assert!(max as f64 / total as f64 > 0.9, "dominant PC share {}", max as f64 / total as f64);
    }

    #[test]
    fn miss_rate_is_around_three_quarters() {
        let w = generate(Scale::Small);
        let replay = LlcReplay::new(llc(), &w.accesses);
        let report = replay.run(RecencyPolicy::lru());
        let mr = report.miss_rate();
        assert!(mr > 0.6 && mr < 0.9, "ptrchase miss rate {mr}");
    }

    #[test]
    fn prefetching_converts_demand_misses() {
        let base = generate(Scale::Small);
        let fixed = generate_prefetched(Scale::Small, 8);
        let replay_base = LlcReplay::new(llc(), &base.accesses);
        let replay_fixed = LlcReplay::new(llc(), &fixed.accesses);
        let rb = replay_base.run(RecencyPolicy::lru());
        let rf = replay_fixed.run(RecencyPolicy::lru());
        assert!(
            rf.stats.demand_misses < rb.stats.demand_misses / 2,
            "prefetch demand misses {} vs base {}",
            rf.stats.demand_misses,
            rb.stats.demand_misses
        );
        assert!(fixed.accesses.iter().any(|a| a.kind == AccessKind::Prefetch));
    }
}
