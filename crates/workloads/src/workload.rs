//! The [`Workload`] container and generation scales.

use serde::{Deserialize, Serialize};

use cachemind_sim::access::MemoryAccess;

use crate::program::ProgramImage;

/// How large a trace to generate.
///
/// The paper simulates 1 billion instructions per workload; that is neither
/// necessary nor useful for a deterministic reproduction, so generators are
/// parameterised by scale. `Tiny` is for unit tests, `Small` for
/// integration tests and examples, `Full` for the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// ~2k accesses — unit tests.
    Tiny,
    /// ~40k accesses — integration tests, examples, trace database default.
    Small,
    /// ~300k accesses — benchmark harness.
    Full,
}

impl Scale {
    /// A multiplier applied to each generator's base iteration counts.
    pub const fn factor(self) -> u64 {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 20,
            Scale::Full => 150,
        }
    }
}

/// A generated workload: its access stream plus the program image that maps
/// PCs back to functions and disassembly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// Stable workload name (`"mcf"`, `"lbm"`, ...), used as the database
    /// key prefix.
    pub name: String,
    /// A short human-readable description (the paper's `description` field).
    pub description: String,
    /// The synthetic program image behind the PCs.
    pub program: ProgramImage,
    /// The memory access stream (LLC-level; see crate docs).
    pub accesses: Vec<MemoryAccess>,
    /// Total dynamic instruction count (for IPC estimation).
    pub instr_count: u64,
}

impl Workload {
    /// Distinct PCs appearing in the access stream, in first-seen order.
    pub fn unique_pcs(&self) -> Vec<cachemind_sim::addr::Pc> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for a in &self.accesses {
            if seen.insert(a.pc) {
                out.push(a.pc);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_are_ordered() {
        assert!(Scale::Tiny.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Full.factor());
    }
}
