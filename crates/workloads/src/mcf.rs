//! `mcf` — sparse network-simplex pointer chasing.
//!
//! SPEC 429.mcf solves a minimum-cost-flow problem; its LLC behaviour is
//! dominated by pointer walks over a huge arc array (near-zero locality)
//! mixed with much hotter node-potential reads. The paper's bypass use case
//! (§6.3) reports an LRU hit rate of ~25% on mcf and improves it by
//! bypassing the dominant arc-walk PCs — the structure reproduced here.

use rand::Rng;

use cachemind_sim::addr::Pc;

use crate::kernels::{shuffled_ring, zipf, StreamBuilder, LINE};
use crate::program::ProgramBuilder;
use crate::workload::{Scale, Workload};

const ARC_REGION: u64 = 0x1000_0000;
/// The arc's head-node structure lives in its own array (an `arc->head`
/// dereference), so arc-walk and arc-ident touch distinct cache lines.
const ARC_DATA_REGION: u64 = 0x1800_0000;
const NODE_REGION: u64 = 0x2000_0000;
const BASKET_REGION: u64 = 0x3000_0000;

/// Arc array size in cache lines (≫ LLC capacity: the miss generator).
const ARC_LINES: usize = 16_384;
/// Node array size in lines. Deliberately *larger* than the experiment LLC
/// (2048 lines) so that the streaming arc traffic genuinely contests the
/// node working set — the precondition for the paper's bypass win.
const NODE_LINES: u64 = 3072;
/// Basket (candidate list) size in lines.
const BASKET_LINES: u64 = 96;

/// Generates the synthetic mcf workload.
pub fn generate(scale: Scale) -> Workload {
    let mut pb = ProgramBuilder::new(0x401380);
    let arc_pcs = pb.function(
        "primal_bea_mpp",
        "for( ; arc < stop_arcs; arc += nr_group ) {\n    if( arc->ident > BASIS ) {\n        red_cost = bea_compute_red_cost( arc );\n    }\n}",
        &[
            "mov (%rdi),%rax",
            "mov 0x18(%rax),%rcx",
            "cmp $0x0,0x30(%rcx)",
            "jle 4015f0 <primal_bea_mpp+0x270>",
            "mov 0x8(%rcx),%rdx",
            "imul 0x20(%rdx),%rsi",
        ],
    );
    let node_pcs = pb.function(
        "refresh_potential",
        "while( node != root ) {\n    node->potential = node->basic_arc->cost + node->pred->potential;\n    node = node->child;\n}",
        &[
            "mov 0x40(%rbx),%rax",
            "mov 0x8(%rax),%rdx",
            "add 0x48(%rdx),%rcx",
            "mov %rcx,0x10(%rbx)",
        ],
    );
    let basket_pcs = pb.function(
        "sort_basket",
        "static void sort_basket( long min, long max ) {\n    cost = perm[cut]->abs_cost;\n}",
        &["mov (%r8,%r9,8),%rax", "mov 0x28(%rax),%r10"],
    );
    let program = pb.build();

    // PC roles.
    let arc_walk = arc_pcs[1]; // dominant miss PC: the arc pointer load
    let arc_ident = arc_pcs[2]; // secondary arc access
    let node_load = node_pcs[0];
    let node_store = node_pcs[3];
    let basket_load = basket_pcs[0];

    let mut b = StreamBuilder::new(0x6D63_6600); // "mcf"
    let ring = shuffled_ring(b.rng(), ARC_LINES);
    let mut arc_pos = 0usize;

    let iters = 220 * scale.factor();
    for i in 0..iters {
        // Pricing sweep: chase 6 arcs through the shuffled ring.
        for _ in 0..6 {
            arc_pos = ring[arc_pos];
            b.load(arc_walk, ARC_REGION + arc_pos as u64 * LINE);
            if b.rng().gen_bool(0.3) {
                // Dereference the arc's head node: a different line in a
                // sparse companion array, equally reuse-poor.
                b.load(arc_ident, ARC_DATA_REGION + arc_pos as u64 * LINE);
            }
        }
        // Potential refresh: hot zipfian node reads plus one store.
        for _ in 0..3 {
            let n = zipf(b.rng(), NODE_LINES, 2.0);
            b.load(node_load, NODE_REGION + n * LINE);
        }
        let n = zipf(b.rng(), NODE_LINES, 2.0);
        b.store(node_store, NODE_REGION + n * LINE);
        // Periodic basket sort touches a small, warm candidate array.
        if i % 8 == 0 {
            for k in 0..4 {
                b.load(basket_load, BASKET_REGION + ((i / 8 + k) % BASKET_LINES) * LINE);
            }
        }
    }

    let (accesses, instr_count) = b.finish();
    Workload {
        name: "mcf".to_owned(),
        description: "SPEC 429.mcf-like network simplex: pointer walks over a \
                      16K-line arc array (poor locality, dominant miss PCs in \
                      primal_bea_mpp) interleaved with hot node-potential reads \
                      in refresh_potential."
            .to_owned(),
        program,
        accesses,
        instr_count,
    }
}

/// The PC of the dominant arc-walk load (exposed for tests; analyses should
/// discover it through CacheMind queries instead).
pub fn arc_walk_pc() -> Pc {
    // primal_bea_mpp base + one instruction.
    Pc::new(0x401380 + 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;

    fn llc() -> CacheConfig {
        CacheConfig::new("LLC", 8, 8, 6) // 256 sets x 8 ways = 2048 lines
    }

    #[test]
    fn lru_hit_rate_is_low_but_nonzero() {
        let w = generate(Scale::Small);
        let replay = LlcReplay::new(llc(), &w.accesses);
        let report = replay.run(RecencyPolicy::lru());
        let hr = report.hit_rate();
        assert!(hr > 0.10 && hr < 0.55, "mcf LRU hit rate {hr}");
    }

    #[test]
    fn arc_walk_pc_is_miss_dominated() {
        let w = generate(Scale::Small);
        let replay = LlcReplay::new(llc(), &w.accesses);
        let report = replay.run(RecencyPolicy::lru());
        let (mut arc_miss, mut arc_all, mut node_miss, mut node_all) = (0u64, 0u64, 0u64, 0u64);
        for r in &report.records {
            if r.pc == arc_walk_pc() {
                arc_all += 1;
                arc_miss += r.is_miss as u64;
            }
            if w.program.function_of(r.pc).is_some_and(|f| f.name == "refresh_potential") {
                node_all += 1;
                node_miss += r.is_miss as u64;
            }
        }
        assert!(arc_all > 0 && node_all > 0);
        let arc_rate = arc_miss as f64 / arc_all as f64;
        let node_rate = node_miss as f64 / node_all as f64;
        assert!(arc_rate > 0.9, "arc miss rate {arc_rate}");
        assert!(node_rate < arc_rate, "node miss rate {node_rate} vs arc {arc_rate}");
    }

    #[test]
    fn pcs_map_to_functions() {
        let w = generate(Scale::Tiny);
        for pc in w.unique_pcs() {
            assert!(w.program.function_of(pc).is_some(), "unmapped PC {pc}");
        }
    }
}
