//! `bzip2` — block-sorting compression.
//!
//! Figure 2 of the paper shows a retrieved trace excerpt resolving to
//! bzip2's `mainSimpleSort`; this generator provides the matching program
//! image and access structure: pointer-indexed block reads during sorting
//! (data-dependent, moderate locality), a hot quadrant of comparison
//! offsets, and sequential output writes.

use rand::Rng;

use crate::kernels::{zipf, StreamBuilder, LINE};
use crate::program::ProgramBuilder;
use crate::workload::{Scale, Workload};

const BLOCK: u64 = 0xB000_0000;
const PTR_ARRAY: u64 = 0xB800_0000;
const OUTPUT: u64 = 0xBC00_0000;

/// Block size in lines (several LLC's worth).
const BLOCK_LINES: u64 = 5120;
/// Pointer array in lines.
const PTR_LINES: u64 = 1536;
/// Output buffer chunk in lines.
const OUT_LINES: u64 = 256;

/// Generates the synthetic bzip2 workload.
pub fn generate(scale: Scale) -> Workload {
    let mut pb = ProgramBuilder::new(0x405800);
    let sort_pcs = pb.function(
        "mainSimpleSort",
        "while (unLo <= unHi) {\n    n = ((Int32)block[ptr[unLo]+d]) - ((Int32)block[ptr[unHi]+d]);\n    if (n == 0) { mswap(ptr[unLo], ptr[unHi]); }\n}",
        &[
            "mov (%r12,%rbx,4),%eax",
            "movzbl (%r13,%rax,1),%edx",
            "test %al,%al",
            "jne 4032d7 <mainSimpleSort+0xbd>",
            "jmp 40336d <mainSimpleSort+0x153>",
            "nop",
            "mov -0x14(%rbp),%eax",
        ],
    );
    let qsort_pcs = pb.function(
        "mainQSort3",
        "while (sp > 0) {\n    mpop(lo, hi, d);\n    if (hi - lo < MAIN_QSORT_SMALL_THRESH) {\n        mainSimpleSort(ptr, block, quadrant, nblock, lo, hi, d, budget);\n    }\n}",
        &["mov (%rsp),%rdi", "cmp $0x14,%ecx", "jl 405810 <mainSimpleSort>"],
    );
    let out_pcs = pb.function(
        "generateMTFValues",
        "for (i = 0; i < s->nblock; i++) {\n    j = ptr[i]-1;\n    s->zptr[wr] = j;\n}",
        &["mov (%r9,%r10,4),%r11d", "mov %r11d,(%r8,%rsi,4)"],
    );
    let program = pb.build();

    let ptr_load = sort_pcs[0];
    let block_load = sort_pcs[1];
    let stack_pop = qsort_pcs[0];
    let out_read = out_pcs[0];
    let out_write = out_pcs[1];

    let mut b = StreamBuilder::new(0x627A_6970); // "bzip"
    let rounds = 160 * scale.factor();
    let mut out_pos = 0u64;
    for r in 0..rounds {
        // Quicksort partition: pop work, then compare pointer-indexed bytes.
        b.load(stack_pop, 0x7FFF_8000 + (r % 8) * LINE);
        for _ in 0..5 {
            // ptr[] is walked with skewed locality (partitions shrink).
            let p = zipf(b.rng(), PTR_LINES, 1.4);
            b.load(ptr_load, PTR_ARRAY + p * LINE);
            // block[ptr[i]+d]: data-dependent byte read, near-uniform.
            let blk = b.rng().gen_range(0..BLOCK_LINES);
            b.load(block_load, BLOCK + blk * LINE);
        }
        // MTF output phase every few rounds: sequential read + write.
        if r % 4 == 0 {
            for k in 0..3 {
                let line = (out_pos + k) % OUT_LINES;
                b.load(out_read, PTR_ARRAY + line * LINE);
                b.store(out_write, OUTPUT + line * LINE);
            }
            out_pos += 3;
        }
    }

    let (accesses, instr_count) = b.finish();
    Workload {
        name: "bzip2".to_owned(),
        description: "SPEC 401.bzip2-like block sorting: data-dependent block \
                      reads in mainSimpleSort (poor locality), skewed pointer-\
                      array reuse, and sequential MTF output — the Figure 2 \
                      program context."
            .to_owned(),
        program,
        accesses,
        instr_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::config::CacheConfig;
    use cachemind_sim::replacement::RecencyPolicy;
    use cachemind_sim::replay::LlcReplay;

    #[test]
    fn figure2_symbol_is_present() {
        let w = generate(Scale::Tiny);
        let f = w
            .program
            .functions()
            .iter()
            .find(|f| f.name == "mainSimpleSort")
            .expect("mainSimpleSort");
        assert!(f.instructions.iter().any(|i| i.text.contains("test %al,%al")));
        assert!(f.source.contains("unLo"));
    }

    #[test]
    fn block_loads_miss_more_than_pointer_loads() {
        let w = generate(Scale::Small);
        let replay = LlcReplay::new(CacheConfig::new("LLC", 8, 8, 6), &w.accesses);
        let report = replay.run(RecencyPolicy::lru());
        let rate_of = |func: &str| {
            let (mut m, mut a) = (0u64, 0u64);
            for r in &report.records {
                if w.program.function_of(r.pc).is_some_and(|f| f.name == func) {
                    a += 1;
                    m += r.is_miss as u64;
                }
            }
            (m as f64 / a.max(1) as f64, a)
        };
        let (block_rate, block_n) = rate_of("mainSimpleSort");
        let (out_rate, out_n) = rate_of("generateMTFValues");
        assert!(block_n > 0 && out_n > 0);
        assert!(
            block_rate > out_rate,
            "sort misses {block_rate} should exceed output misses {out_rate}"
        );
    }
}
