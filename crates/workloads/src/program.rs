//! Synthetic program images: functions, instructions and disassembly.
//!
//! The paper augments ChampSim traces with source-level metadata: "each PC
//! is linked to its corresponding assembly and source code" (§5). Our
//! workloads are synthetic, so each generator also builds a [`ProgramImage`]
//! — a table of functions with plausible x86-style disassembly — and draws
//! every access PC from it. The trace database later joins PC → function
//! name / source snippet / assembly window exactly as the paper's schema
//! requires.

use serde::{Deserialize, Serialize};

use cachemind_sim::addr::Pc;

/// One synthetic instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instruction {
    /// The instruction's PC.
    pub pc: Pc,
    /// Rendered disassembly text (e.g. `mov -0x14(%rbp),%eax`).
    pub text: String,
}

/// A synthetic function: a name, a source snippet and a straight-line body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Function (or mangled symbol) name.
    pub name: String,
    /// First PC of the body.
    pub base_pc: Pc,
    /// The instruction sequence.
    pub instructions: Vec<Instruction>,
    /// A short C-like source snippet for semantic analysis.
    pub source: String,
}

impl Function {
    /// The PC one past the last instruction.
    pub fn end_pc(&self) -> Pc {
        self.instructions.last().map(|i| Pc::new(i.pc.value() + 4)).unwrap_or(self.base_pc)
    }

    /// Whether `pc` falls inside this function's body.
    pub fn contains(&self, pc: Pc) -> bool {
        pc >= self.base_pc && pc < self.end_pc()
    }
}

/// A program image: the set of functions of one synthetic binary.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramImage {
    functions: Vec<Function>,
}

impl ProgramImage {
    /// Creates an empty image.
    pub fn new() -> Self {
        ProgramImage::default()
    }

    /// Assembles an image from prebuilt functions — the deserialization
    /// path (e.g. the trace-database snapshot reader reconstructing images
    /// whose layout [`ProgramBuilder`] already fixed).
    pub fn from_functions(functions: Vec<Function>) -> Self {
        ProgramImage { functions }
    }

    /// All functions.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// The function containing `pc`, if any.
    pub fn function_of(&self, pc: Pc) -> Option<&Function> {
        self.functions.iter().find(|f| f.contains(pc))
    }

    /// A window of disassembly text around `pc` (up to `radius` instructions
    /// either side), rendered like an `objdump` excerpt.
    pub fn assembly_window(&self, pc: Pc, radius: usize) -> Option<String> {
        let f = self.function_of(pc)?;
        let idx = f.instructions.iter().position(|i| i.pc == pc)?;
        let lo = idx.saturating_sub(radius);
        let hi = (idx + radius + 1).min(f.instructions.len());
        let mut out = String::new();
        for ins in &f.instructions[lo..hi] {
            out.push_str(&format!("{:x}: {}\n", ins.pc.value(), ins.text));
        }
        Some(out)
    }

    /// The source snippet of the function containing `pc`.
    pub fn source_of(&self, pc: Pc) -> Option<&str> {
        self.function_of(pc).map(|f| f.source.as_str())
    }
}

/// Builds functions with deterministic pseudo-disassembly.
#[derive(Debug)]
pub struct ProgramBuilder {
    image: ProgramImage,
    next_pc: u64,
}

impl ProgramBuilder {
    /// Starts a builder laying functions out from `base` (e.g. `0x400000`).
    pub fn new(base: u64) -> Self {
        ProgramBuilder { image: ProgramImage::new(), next_pc: base }
    }

    /// Adds a function with `body` instruction mnemonics; returns the PCs
    /// assigned to each mnemonic so the generator can reference them.
    pub fn function(&mut self, name: &str, source: &str, body: &[&str]) -> Vec<Pc> {
        let base_pc = Pc::new(self.next_pc);
        let mut pcs = Vec::with_capacity(body.len());
        let mut instructions = Vec::with_capacity(body.len());
        for text in body {
            let pc = Pc::new(self.next_pc);
            instructions.push(Instruction { pc, text: (*text).to_owned() });
            pcs.push(pc);
            self.next_pc += 4;
        }
        // Function padding so neighbouring functions do not abut.
        self.next_pc += 16;
        self.image.functions.push(Function {
            name: name.to_owned(),
            base_pc,
            instructions,
            source: source.to_owned(),
        });
        pcs
    }

    /// Finishes the image.
    pub fn build(self) -> ProgramImage {
        self.image
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> (ProgramImage, Vec<Pc>) {
        let mut b = ProgramBuilder::new(0x400000);
        let pcs = b.function(
            "mainSimpleSort",
            "while (unLo <= unHi) { ... }",
            &["test %al,%al", "jne 4032d7", "mov -0x14(%rbp),%eax"],
        );
        b.function("refresh_potential", "node->potential = ...;", &["mov (%rdi),%rax"]);
        (b.build(), pcs)
    }

    #[test]
    fn function_lookup_by_pc() {
        let (img, pcs) = demo();
        assert_eq!(img.function_of(pcs[1]).unwrap().name, "mainSimpleSort");
        assert!(img.function_of(Pc::new(0x1)).is_none());
    }

    #[test]
    fn assembly_window_centers_on_pc() {
        let (img, pcs) = demo();
        let w = img.assembly_window(pcs[1], 1).unwrap();
        assert!(w.contains("test %al,%al"));
        assert!(w.contains("jne 4032d7"));
        assert!(w.contains("mov -0x14(%rbp),%eax"));
    }

    #[test]
    fn functions_do_not_overlap() {
        let (img, _) = demo();
        let f0 = &img.functions()[0];
        let f1 = &img.functions()[1];
        assert!(f0.end_pc() <= f1.base_pc);
    }

    #[test]
    fn source_lookup() {
        let (img, pcs) = demo();
        assert!(img.source_of(pcs[0]).unwrap().contains("unLo"));
    }
}
