//! # cachemind-workloads
//!
//! Synthetic workload generators and program images for the CacheMind
//! reproduction.
//!
//! The paper evaluates on SPEC CPU2006 traces (astar, lbm, mcf — plus milc
//! for the Mockingjay use case) and a pointer-chasing microbenchmark. Those
//! binaries and CRC-2 traces are not redistributable, so this crate builds
//! *synthetic equivalents*: seeded, deterministic access-stream generators
//! whose qualitative structure matches what the paper's analyses depend on:
//!
//! * [`astar`] — branchy graph search: a revisited open-list working set
//!   mixed with spatially-local map reads.
//! * [`lbm`] — streaming stencil sweeps interleaved with strong temporal
//!   reuse (the scan-vs-reuse interleaving the paper highlights in §6.3).
//! * [`mcf`] — sparse pointer chasing with a handful of dominant
//!   miss-causing PCs and a low LLC hit rate.
//! * [`milc`] — staggered lattice sweeps with phase behaviour (the
//!   Mockingjay retraining target).
//! * [`ptrchase`] — a microbenchmark with one dominant miss PC, used by the
//!   software-prefetch use case (§6.3), including a prefetch-enabled
//!   variant.
//!
//! Every access carries a PC drawn from a synthetic [`program::ProgramImage`]
//! so that CacheMind's semantic analyses (function names, disassembly
//! context) have real lookup targets.
//!
//! # Example
//!
//! ```rust
//! use cachemind_workloads::prelude::*;
//!
//! let workload = mcf::generate(Scale::Tiny);
//! assert_eq!(workload.name, "mcf");
//! assert!(!workload.accesses.is_empty());
//! let f = workload.program.function_of(workload.accesses[0].pc).expect("mapped PC");
//! assert!(!f.name.is_empty());
//! ```

pub mod astar;
pub mod bzip2;
pub mod kernels;
pub mod lbm;
pub mod mcf;
pub mod milc;
pub mod program;
pub mod ptrchase;
pub mod workload;

pub use program::{Function, Instruction, ProgramImage};
pub use workload::{Scale, Workload};

/// The three paper workloads used to populate the trace database.
pub const DATABASE_WORKLOADS: [&str; 3] = ["astar", "lbm", "mcf"];

/// Every workload name [`by_name`] can generate. Keep this list and
/// `by_name`'s match in lockstep (the registry test cross-checks them).
pub const KNOWN_WORKLOADS: [&str; 6] = ["astar", "lbm", "mcf", "milc", "ptrchase", "bzip2"];

/// Generates one of the named workloads (`astar`, `lbm`, `mcf`, `milc`,
/// `ptrchase`, `bzip2`) at the given scale.
///
/// ```rust
/// use cachemind_workloads::{by_name, Scale};
/// assert!(by_name("lbm", Scale::Tiny).is_some());
/// assert!(by_name("specfp", Scale::Tiny).is_none());
/// ```
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    Some(match name {
        "astar" => astar::generate(scale),
        "lbm" => lbm::generate(scale),
        "mcf" => mcf::generate(scale),
        "milc" => milc::generate(scale),
        "ptrchase" => ptrchase::generate(scale),
        "bzip2" => bzip2::generate(scale),
        _ => return None,
    })
}

/// Whether [`by_name`] knows `name` — without generating the workload, so
/// configuration surfaces can validate names before any simulation runs.
pub fn is_known(name: &str) -> bool {
    KNOWN_WORKLOADS.contains(&name)
}

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::program::{Function, Instruction, ProgramImage};
    pub use crate::workload::{Scale, Workload};
    pub use crate::{astar, by_name, bzip2, kernels, lbm, mcf, milc, ptrchase};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_database_workloads_generate() {
        for name in DATABASE_WORKLOADS {
            let w = by_name(name, Scale::Tiny).unwrap();
            assert_eq!(w.name, name);
            assert!(w.instr_count > 0);
        }
    }

    #[test]
    fn is_known_agrees_with_by_name() {
        for name in KNOWN_WORKLOADS {
            assert!(is_known(name) && by_name(name, Scale::Tiny).is_some(), "{name}");
        }
        for name in ["specfp", "astarx", ""] {
            assert!(!is_known(name) && by_name(name, Scale::Tiny).is_none(), "{name}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = mcf::generate(Scale::Tiny);
        let b = mcf::generate(Scale::Tiny);
        assert_eq!(a.accesses, b.accesses);
    }
}
