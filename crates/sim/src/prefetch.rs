//! Hardware prefetcher models: stream-transform a demand access sequence by
//! inserting prefetch accesses.
//!
//! The paper's related-work section stresses prefetcher–replacement
//! interactions (PACIPV, ISCA'25); this module provides the substrate to
//! study them in the replay pipeline: a next-line prefetcher and a
//! PC-indexed stride prefetcher, both operating on the access stream before
//! it reaches the LLC replay (prefetches are [`AccessKind::Prefetch`], so
//! they fill lines without counting as demand traffic).

use serde::{Deserialize, Serialize};

use crate::access::{AccessKind, MemoryAccess};
use crate::addr::{Address, Pc};

/// Which hardware prefetcher to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No prefetching: the stream passes through untouched (the baseline
    /// point on the scenario grid's prefetcher axis).
    None,
    /// Fetch line N+1 on every demand access to line N.
    NextLine,
    /// Per-PC stride detection: after two accesses with the same delta,
    /// fetch `degree` lines ahead along the stride.
    Stride {
        /// How many strides ahead to fetch.
        degree: u8,
    },
}

impl PrefetcherKind {
    /// The degree used when `"stride"` is requested without a number.
    pub const DEFAULT_STRIDE_DEGREE: u8 = 4;

    /// Parses a stable prefetcher name: `none`, `nextline` (or
    /// `next-line`), `stride` (degree 4) or `stride<N>` (e.g. `stride2`).
    pub fn parse(name: &str) -> Option<PrefetcherKind> {
        match name {
            "none" => Some(PrefetcherKind::None),
            "nextline" | "next-line" => Some(PrefetcherKind::NextLine),
            "stride" => Some(PrefetcherKind::Stride { degree: Self::DEFAULT_STRIDE_DEGREE }),
            other => {
                let degree: u8 = other.strip_prefix("stride")?.parse().ok()?;
                if degree == 0 {
                    return None;
                }
                Some(PrefetcherKind::Stride { degree })
            }
        }
    }

    /// The canonical label, round-tripping through [`PrefetcherKind::parse`]:
    /// `none`, `nextline`, `stride<degree>`.
    pub fn label(&self) -> String {
        match self {
            PrefetcherKind::None => "none".to_owned(),
            PrefetcherKind::NextLine => "nextline".to_owned(),
            PrefetcherKind::Stride { degree } => format!("stride{degree}"),
        }
    }
}

/// Per-PC stride-detection state.
#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    last_line: u64,
    stride: i64,
    confident: bool,
}

/// SplitMix64 finalizer (same mixer as the reuse oracle's interner).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

const EMPTY_PC: u64 = u64::MAX;

/// A linear-probing PC → [`StrideEntry`] table. The stride transform does
/// one lookup per demand access, and the std `HashMap`'s SipHash dominated
/// it; open addressing with a multiplicative mix is several times faster
/// and just as deterministic — each PC's stride state is independent of
/// table layout.
#[derive(Debug, Clone)]
struct StrideTable {
    slots: Vec<(u64, StrideEntry)>,
    mask: usize,
    len: usize,
}

impl StrideTable {
    fn new() -> Self {
        let cap = 256;
        StrideTable { slots: vec![(EMPTY_PC, StrideEntry::default()); cap], mask: cap - 1, len: 0 }
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![(EMPTY_PC, StrideEntry::default()); cap]);
        self.mask = cap - 1;
        for slot in old {
            if slot.0 != EMPTY_PC {
                let mut h = mix64(slot.0) as usize & self.mask;
                while self.slots[h].0 != EMPTY_PC {
                    h = (h + 1) & self.mask;
                }
                self.slots[h] = slot;
            }
        }
    }

    /// The entry for `pc`, default-initialised on first sight (the
    /// open-addressing analogue of `HashMap::entry(..).or_default()`).
    fn entry(&mut self, pc: Pc) -> &mut StrideEntry {
        debug_assert_ne!(pc.value(), EMPTY_PC, "PC collides with the stride-table sentinel");
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let key = pc.value();
        let mut h = mix64(key) as usize & self.mask;
        loop {
            let k = self.slots[h].0;
            if k == key {
                return &mut self.slots[h].1;
            }
            if k == EMPTY_PC {
                self.slots[h].0 = key;
                self.len += 1;
                return &mut self.slots[h].1;
            }
            h = (h + 1) & self.mask;
        }
    }
}

/// A stream-rewriting hardware prefetcher.
///
/// ```rust
/// use cachemind_sim::prefetch::{Prefetcher, PrefetcherKind};
/// use cachemind_sim::access::{AccessKind, MemoryAccess};
/// use cachemind_sim::addr::{Address, Pc};
///
/// let accesses = vec![MemoryAccess::load(Pc::new(1), Address::new(0), 0)];
/// let out = Prefetcher::new(PrefetcherKind::NextLine).transform(&accesses);
/// assert_eq!(out.len(), 2);
/// assert_eq!(out[1].kind, AccessKind::Prefetch);
/// ```
#[derive(Debug, Clone)]
pub struct Prefetcher {
    kind: PrefetcherKind,
    table: StrideTable,
}

impl Prefetcher {
    /// Creates a prefetcher of the given kind.
    pub fn new(kind: PrefetcherKind) -> Self {
        Prefetcher { kind, table: StrideTable::new() }
    }

    /// The modelled kind.
    pub fn kind(&self) -> PrefetcherKind {
        self.kind
    }

    /// Rewrites a demand stream, inserting prefetches after the accesses
    /// that trigger them. Only demand loads/stores train the prefetcher.
    pub fn transform(&mut self, accesses: &[MemoryAccess]) -> Vec<MemoryAccess> {
        if self.kind == PrefetcherKind::None {
            return accesses.to_vec();
        }
        let mut out = Vec::with_capacity(accesses.len() * 2);
        for access in accesses {
            out.push(*access);
            if !matches!(access.kind, AccessKind::Load | AccessKind::Store) {
                continue;
            }
            let line = access.address.value() >> 6;
            match self.kind {
                PrefetcherKind::None => unreachable!("handled by the early return"),
                PrefetcherKind::NextLine => {
                    out.push(MemoryAccess::prefetch(
                        access.pc,
                        Address::new((line + 1) << 6),
                        access.instr_index,
                    ));
                }
                PrefetcherKind::Stride { degree } => {
                    let entry = self.table.entry(access.pc);
                    let delta = line as i64 - entry.last_line as i64;
                    if entry.last_line != 0 && delta == entry.stride && delta != 0 {
                        entry.confident = true;
                    } else if entry.last_line != 0 {
                        entry.stride = delta;
                        entry.confident = false;
                    }
                    if entry.confident {
                        for d in 1..=degree as i64 {
                            let target = line as i64 + entry.stride * d;
                            if target > 0 {
                                out.push(MemoryAccess::prefetch(
                                    access.pc,
                                    Address::new((target as u64) << 6),
                                    access.instr_index,
                                ));
                            }
                        }
                    }
                    entry.last_line = line;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::replacement::RecencyPolicy;
    use crate::replay::LlcReplay;

    fn sequential(n: u64, pc: u64) -> Vec<MemoryAccess> {
        (0..n).map(|i| MemoryAccess::load(Pc::new(pc), Address::new(i * 64), i)).collect()
    }

    #[test]
    fn next_line_prefetch_converts_demand_misses() {
        let demand = sequential(512, 0x400000);
        let transformed = Prefetcher::new(PrefetcherKind::NextLine).transform(&demand);
        let cfg = CacheConfig::new("LLC", 4, 4, 6);
        let base = LlcReplay::new(cfg.clone(), &demand).run(RecencyPolicy::lru());
        let with_pf = LlcReplay::new(cfg, &transformed).run(RecencyPolicy::lru());
        assert!(
            with_pf.stats.demand_misses < base.stats.demand_misses / 2,
            "prefetch {} vs base {} demand misses",
            with_pf.stats.demand_misses,
            base.stats.demand_misses
        );
    }

    #[test]
    fn stride_prefetcher_learns_strides() {
        // Stride-4 walk: the stride prefetcher should cover it, next-line
        // should not.
        let demand: Vec<MemoryAccess> = (0..512u64)
            .map(|i| MemoryAccess::load(Pc::new(7), Address::new(i * 4 * 64), i))
            .collect();
        let strided = Prefetcher::new(PrefetcherKind::Stride { degree: 2 }).transform(&demand);
        let nextline = Prefetcher::new(PrefetcherKind::NextLine).transform(&demand);
        let cfg = CacheConfig::new("LLC", 4, 4, 6);
        let s = LlcReplay::new(cfg.clone(), &strided).run(RecencyPolicy::lru());
        let n = LlcReplay::new(cfg, &nextline).run(RecencyPolicy::lru());
        assert!(
            s.stats.demand_misses < n.stats.demand_misses,
            "stride {} vs next-line {}",
            s.stats.demand_misses,
            n.stats.demand_misses
        );
    }

    #[test]
    fn none_is_the_identity_transform() {
        let demand = sequential(32, 0x400000);
        let out = Prefetcher::new(PrefetcherKind::None).transform(&demand);
        assert_eq!(out, demand);
    }

    #[test]
    fn names_round_trip_through_parse_and_label() {
        for name in ["none", "nextline", "stride4", "stride2"] {
            let kind = PrefetcherKind::parse(name).unwrap_or_else(|| panic!("parses {name}"));
            assert_eq!(kind.label(), name);
        }
        assert_eq!(
            PrefetcherKind::parse("stride"),
            Some(PrefetcherKind::Stride { degree: PrefetcherKind::DEFAULT_STRIDE_DEGREE })
        );
        assert_eq!(PrefetcherKind::parse("next-line"), Some(PrefetcherKind::NextLine));
        assert_eq!(PrefetcherKind::parse("stride0"), None);
        assert_eq!(PrefetcherKind::parse("markov"), None);
    }

    #[test]
    fn prefetches_do_not_train_the_prefetcher() {
        let mut p = Prefetcher::new(PrefetcherKind::NextLine);
        let pf = MemoryAccess::prefetch(Pc::new(1), Address::new(0), 0);
        assert_eq!(p.transform(&[pf]).len(), 1, "prefetch must not cascade");
    }

    #[test]
    fn random_traffic_gains_little_from_next_line() {
        // Pointer-chase-like traffic: next-line prefetching mostly pollutes.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let demand: Vec<MemoryAccess> = (0..512u64)
            .map(|i| {
                MemoryAccess::load(Pc::new(9), Address::new(rng.gen_range(0..4096u64) * 64), i)
            })
            .collect();
        let transformed = Prefetcher::new(PrefetcherKind::NextLine).transform(&demand);
        let cfg = CacheConfig::new("LLC", 3, 2, 6);
        let base = LlcReplay::new(cfg.clone(), &demand).run(RecencyPolicy::lru());
        let with_pf = LlcReplay::new(cfg, &transformed).run(RecencyPolicy::lru());
        // Few demand misses saved relative to the stream case.
        let saved = base.stats.demand_misses.saturating_sub(with_pf.stats.demand_misses);
        assert!(
            (saved as f64) < 0.2 * base.stats.demand_misses as f64,
            "random traffic saved {saved} of {}",
            base.stats.demand_misses
        );
    }
}
