//! Simulator configuration, defaulting to Table 2 of the CacheMind paper.

use serde::{Deserialize, Serialize};

use crate::addr::{Address, SetId};

/// Geometry and latency of one cache level.
///
/// ```rust
/// use cachemind_sim::config::CacheConfig;
///
/// let llc = CacheConfig::llc();
/// assert_eq!(llc.sets(), 2048);
/// assert_eq!(llc.ways, 16);
/// assert_eq!(llc.capacity_bytes(), 2 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Human-readable level name ("L1D", "LLC", ...).
    pub name: String,
    /// log2 of the number of sets.
    pub sets_log2: u32,
    /// Associativity.
    pub ways: usize,
    /// log2 of the line size in bytes.
    pub line_size_log2: u32,
    /// Access latency in cycles.
    pub latency_cycles: u64,
    /// Number of MSHR entries.
    pub mshr_entries: usize,
}

impl CacheConfig {
    /// Creates a configuration with the given geometry and default
    /// latency/MSHR parameters.
    pub fn new(name: &str, sets_log2: u32, ways: usize, line_size_log2: u32) -> Self {
        CacheConfig {
            name: name.to_owned(),
            sets_log2,
            ways,
            line_size_log2,
            latency_cycles: 1,
            mshr_entries: 8,
        }
    }

    /// Sets the access latency, returning `self` for chaining.
    pub fn with_latency(mut self, cycles: u64) -> Self {
        self.latency_cycles = cycles;
        self
    }

    /// Sets the MSHR entry count, returning `self` for chaining.
    pub fn with_mshr(mut self, entries: usize) -> Self {
        self.mshr_entries = entries;
        self
    }

    /// Number of sets.
    pub const fn sets(&self) -> usize {
        1 << self.sets_log2
    }

    /// Line size in bytes.
    pub const fn line_size(&self) -> usize {
        1 << self.line_size_log2
    }

    /// Total capacity in bytes.
    pub const fn capacity_bytes(&self) -> usize {
        self.sets() * self.ways * self.line_size()
    }

    /// Number of lines the cache can hold.
    pub const fn capacity_lines(&self) -> usize {
        self.sets() * self.ways
    }

    /// The set an address maps to under this geometry.
    pub fn set_of(&self, address: Address) -> SetId {
        address.line(self.line_size_log2).set(self.sets_log2)
    }

    /// Table 2: 32 KB, 64 sets, 8 ways, 4-cycle latency, 8-entry MSHR L1I.
    pub fn l1i() -> Self {
        CacheConfig::new("L1I", 6, 8, 6).with_latency(4).with_mshr(8)
    }

    /// Table 2: 32 KB, 64 sets, 8 ways, 4-cycle latency, 16-entry MSHR L1D.
    pub fn l1d() -> Self {
        CacheConfig::new("L1D", 6, 8, 6).with_latency(4).with_mshr(16)
    }

    /// Table 2: 512 KB, 1024 sets, 8 ways, 12-cycle latency, 32-entry MSHR L2.
    pub fn l2() -> Self {
        CacheConfig::new("L2", 10, 8, 6).with_latency(12).with_mshr(32)
    }

    /// Table 2: 2 MB, 2048 sets, 16 ways, 26-cycle latency, 64-entry MSHR LLC.
    pub fn llc() -> Self {
        CacheConfig::new("LLC", 11, 16, 6).with_latency(26).with_mshr(64)
    }

    /// A small LLC (64 sets, 4 ways) for fast tests and examples.
    pub fn small_llc() -> Self {
        CacheConfig::new("LLC", 6, 4, 6).with_latency(26).with_mshr(16)
    }
}

/// DRAM timing (Table 2: DDR4-3200, tRP = tRCD = tCAS = 12.5 ns @ 4 GHz core).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Average access latency in core cycles.
    pub latency_cycles: u64,
    /// Channel count (bandwidth model input).
    pub channels: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        // 3 * 12.5ns at 4 GHz = 150 cycles row-miss; add controller overhead.
        DramConfig { latency_cycles: 160, channels: 1 }
    }
}

/// Core front/back-end parameters (Table 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessorConfig {
    /// Core frequency in GHz (informational).
    pub frequency_ghz: u32,
    /// Fetch/decode/execute width.
    pub width: usize,
    /// Retire width.
    pub retire_width: usize,
    /// Reorder-buffer entries (bounds memory-level parallelism).
    pub rob_entries: usize,
    /// Load-queue entries.
    pub load_queue: usize,
    /// Store-queue entries.
    pub store_queue: usize,
}

impl Default for ProcessorConfig {
    fn default() -> Self {
        ProcessorConfig {
            frequency_ghz: 4,
            width: 6,
            retire_width: 4,
            rob_entries: 352,
            load_queue: 128,
            store_queue: 72,
        }
    }
}

/// Full-machine configuration: core, cache levels and DRAM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Core parameters.
    pub processor: ProcessorConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
    /// DRAM timing.
    pub dram: DramConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            processor: ProcessorConfig::default(),
            l1i: CacheConfig::l1i(),
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            llc: CacheConfig::llc(),
            dram: DramConfig::default(),
        }
    }
}

impl HierarchyConfig {
    /// The paper's Table 2 configuration.
    pub fn table2() -> Self {
        HierarchyConfig::default()
    }

    /// A scaled-down hierarchy for unit tests and fast examples
    /// (4 KB L1D, 16 KB L2, 16 KB 4-way LLC).
    pub fn small() -> Self {
        HierarchyConfig {
            processor: ProcessorConfig::default(),
            l1i: CacheConfig::new("L1I", 4, 4, 6).with_latency(4),
            l1d: CacheConfig::new("L1D", 4, 4, 6).with_latency(4),
            l2: CacheConfig::new("L2", 6, 4, 6).with_latency(12),
            llc: CacheConfig::small_llc(),
            dram: DramConfig::default(),
        }
    }

    /// Renders the configuration as the rows of the paper's Table 2.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Processor: 1 core; {} GHz; {}-wide fetch/decode/execute; {}-wide retire; \
             {}-entry ROB; {}-entry LQ; {}-entry SQ\n",
            self.processor.frequency_ghz,
            self.processor.width,
            self.processor.retire_width,
            self.processor.rob_entries,
            self.processor.load_queue,
            self.processor.store_queue,
        ));
        for level in [&self.l1i, &self.l1d, &self.l2, &self.llc] {
            out.push_str(&format!(
                "{}: {} KB, {} sets, {} ways; {}-cycle latency; {}-entry MSHR\n",
                level.name,
                level.capacity_bytes() / 1024,
                level.sets(),
                level.ways,
                level.latency_cycles,
                level.mshr_entries,
            ));
        }
        out.push_str(&format!(
            "DRAM: DDR4-3200; {} channel(s); ~{} core cycles average latency\n",
            self.dram.channels, self.dram.latency_cycles,
        ));
        out
    }
}

/// A named full-machine configuration — one point on the scenario grid's
/// machine axis.
///
/// `MachineConfig` composes a [`HierarchyConfig`] (which already carries the
/// core, cache-level and DRAM parameters) with a stable `name` and a replay
/// mode. In the default *full-machine* mode a scenario cell simulates the
/// whole hierarchy and reports [`IpcModel`](crate::timing::IpcModel)-derived
/// IPC; in *LLC-only* mode the access stream is replayed directly against
/// the LLC geometry — the original `SweepGrid` behaviour, kept so the old
/// grid can be expressed as a thin adapter over the scenario grid.
///
/// ```rust
/// use cachemind_sim::config::{HierarchyConfig, MachineConfig};
///
/// let m = MachineConfig::new("table2", HierarchyConfig::table2());
/// assert_eq!(m.machine_label(), "table2@llc2048x16+dram160");
/// let fast = m.clone().with_dram_latency(80);
/// assert_eq!(fast.machine_label(), "table2@llc2048x16+dram80");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Stable machine name used in labels ("table2", "small", ...).
    pub name: String,
    /// The composed core + cache + DRAM parameters.
    pub hierarchy: HierarchyConfig,
    /// When set, scenario cells skip the L1/L2 filter and replay the stream
    /// directly against `hierarchy.llc` (the legacy `SweepGrid` mode).
    pub llc_only: bool,
}

impl MachineConfig {
    /// A full-machine configuration.
    pub fn new(name: impl Into<String>, hierarchy: HierarchyConfig) -> Self {
        MachineConfig { name: name.into(), hierarchy, llc_only: false }
    }

    /// Wraps a bare LLC geometry as an LLC-only machine (Table-2 core and
    /// DRAM defaults around it). Its label is the legacy config label
    /// (`name@<sets>x<ways>`), so `SweepGrid` reports convert losslessly.
    pub fn llc_only(llc: CacheConfig) -> Self {
        let name = llc.name.clone();
        let hierarchy = HierarchyConfig { llc, ..HierarchyConfig::default() };
        MachineConfig { name, hierarchy, llc_only: true }
    }

    /// Overrides the DRAM latency, returning `self` for chaining — the
    /// sweep driver's `--dram-latency` axis.
    pub fn with_dram_latency(mut self, cycles: u64) -> Self {
        self.hierarchy.dram.latency_cycles = cycles;
        self
    }

    /// Canonical label: `name@llc<sets>x<ways>+dram<latency>` for a full
    /// machine, the legacy `name@<sets>x<ways>` config label when LLC-only.
    pub fn machine_label(&self) -> String {
        let llc = &self.hierarchy.llc;
        if self.llc_only {
            format!("{}@{}x{}", self.name, llc.sets(), llc.ways)
        } else {
            format!(
                "{}@llc{}x{}+dram{}",
                self.name,
                llc.sets(),
                llc.ways,
                self.hierarchy.dram.latency_cycles
            )
        }
    }

    /// Named machine presets for drivers: `table2` and `small`.
    pub fn preset(name: &str) -> Option<MachineConfig> {
        match name {
            "table2" => Some(MachineConfig::new("table2", HierarchyConfig::table2())),
            "small" => Some(MachineConfig::new("small", HierarchyConfig::small())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_geometries_match_paper() {
        let cfg = HierarchyConfig::table2();
        assert_eq!(cfg.l1i.capacity_bytes(), 32 * 1024);
        assert_eq!(cfg.l1d.capacity_bytes(), 32 * 1024);
        assert_eq!(cfg.l1d.sets(), 64);
        assert_eq!(cfg.l1d.ways, 8);
        assert_eq!(cfg.l2.capacity_bytes(), 512 * 1024);
        assert_eq!(cfg.l2.sets(), 1024);
        assert_eq!(cfg.llc.capacity_bytes(), 2 * 1024 * 1024);
        assert_eq!(cfg.llc.sets(), 2048);
        assert_eq!(cfg.llc.ways, 16);
        assert_eq!(cfg.processor.rob_entries, 352);
    }

    #[test]
    fn describe_mentions_every_level() {
        let text = HierarchyConfig::table2().describe();
        for name in ["L1I", "L1D", "L2", "LLC", "DRAM"] {
            assert!(text.contains(name), "missing {name} in {text}");
        }
    }

    #[test]
    fn machine_labels_are_canonical() {
        let full = MachineConfig::new("table2", HierarchyConfig::table2());
        assert_eq!(full.machine_label(), "table2@llc2048x16+dram160");
        assert_eq!(full.with_dram_latency(400).machine_label(), "table2@llc2048x16+dram400");
        let llc = MachineConfig::llc_only(CacheConfig::new("LLC-half", 10, 16, 6));
        assert_eq!(llc.machine_label(), "LLC-half@1024x16");
        assert!(MachineConfig::preset("table2").is_some());
        assert!(MachineConfig::preset("small").unwrap().hierarchy.llc.ways == 4);
        assert!(MachineConfig::preset("cray-1").is_none());
    }

    #[test]
    fn set_of_uses_line_then_set_bits() {
        let cfg = CacheConfig::llc();
        let a = Address::new((0b10110011101 << 6) | (1 << 40));
        assert_eq!(cfg.set_of(a).index() as u64, 0b10110011101 & ((1 << 11) - 1));
    }
}
