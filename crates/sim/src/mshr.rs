//! A miss-status holding register (MSHR) occupancy model.
//!
//! The timing model needs to know how much memory-level parallelism a level
//! can sustain: a miss that arrives while all MSHR entries are busy must wait
//! for an entry to free up. This model tracks outstanding misses by their
//! completion time (in cycles) and reports the stall imposed on each new
//! miss, plus merge hits for misses to a line that is already outstanding.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::addr::LineAddr;

/// Outcome of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrOutcome {
    /// Extra cycles the miss had to wait for a free entry.
    pub stall_cycles: u64,
    /// Whether the miss merged into an already-outstanding entry.
    pub merged: bool,
}

/// A fixed-capacity MSHR file.
///
/// ```rust
/// use cachemind_sim::mshr::Mshr;
/// use cachemind_sim::addr::LineAddr;
///
/// let mut mshr = Mshr::new(1);
/// let a = mshr.allocate(LineAddr::new(1), 0, 100); // occupies until cycle 100
/// assert_eq!(a.stall_cycles, 0);
/// let b = mshr.allocate(LineAddr::new(2), 10, 100); // must wait for entry
/// assert_eq!(b.stall_cycles, 90);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr {
    entries: usize,
    // (completion_cycle, line) for outstanding misses, min-heap by completion.
    outstanding: BinaryHeap<Reverse<(u64, u64)>>,
}

impl Mshr {
    /// Creates an MSHR file with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "an MSHR file needs at least one entry");
        Mshr { entries, outstanding: BinaryHeap::new() }
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.entries
    }

    /// Number of misses outstanding at `now`.
    pub fn outstanding_at(&mut self, now: u64) -> usize {
        self.retire(now);
        self.outstanding.len()
    }

    fn retire(&mut self, now: u64) {
        while let Some(&Reverse((done, _))) = self.outstanding.peek() {
            if done <= now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
    }

    /// Presents a miss for `line` at cycle `now` with service `latency`.
    /// Returns the stall imposed by entry exhaustion and whether the miss
    /// merged with an in-flight request for the same line.
    pub fn allocate(&mut self, line: LineAddr, now: u64, latency: u64) -> MshrOutcome {
        self.retire(now);
        if self.outstanding.iter().any(|Reverse((_, l))| *l == line.value()) {
            return MshrOutcome { stall_cycles: 0, merged: true };
        }
        let mut start = now;
        let mut stall = 0;
        if self.outstanding.len() >= self.entries {
            // Wait for the earliest-completing entry.
            let Reverse((done, _)) = self.outstanding.pop().expect("non-empty");
            stall = done.saturating_sub(now);
            start = done.max(now);
        }
        self.outstanding.push(Reverse((start + latency, line.value())));
        MshrOutcome { stall_cycles: stall, merged: false }
    }

    /// Clears all outstanding entries.
    pub fn reset(&mut self) {
        self.outstanding.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_same_line() {
        let mut mshr = Mshr::new(4);
        let first = mshr.allocate(LineAddr::new(7), 0, 50);
        assert!(!first.merged);
        let second = mshr.allocate(LineAddr::new(7), 5, 50);
        assert!(second.merged);
        assert_eq!(second.stall_cycles, 0);
    }

    #[test]
    fn stalls_when_full() {
        let mut mshr = Mshr::new(2);
        mshr.allocate(LineAddr::new(1), 0, 100);
        mshr.allocate(LineAddr::new(2), 0, 100);
        let out = mshr.allocate(LineAddr::new(3), 20, 100);
        assert_eq!(out.stall_cycles, 80);
    }

    #[test]
    fn entries_retire_over_time() {
        let mut mshr = Mshr::new(1);
        mshr.allocate(LineAddr::new(1), 0, 10);
        assert_eq!(mshr.outstanding_at(5), 1);
        assert_eq!(mshr.outstanding_at(10), 0);
        let out = mshr.allocate(LineAddr::new(2), 11, 10);
        assert_eq!(out.stall_cycles, 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Mshr::new(0);
    }
}
