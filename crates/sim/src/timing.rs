//! A first-order analytic IPC model.
//!
//! The CacheMind use cases (§6.3) measure interventions as IPC deltas. We do
//! not need cycle accuracy — only a model in which reducing LLC misses (or
//! converting demand misses into prefetch hits) increases IPC by a plausible
//! factor. The model charges:
//!
//! * `instr / width` base cycles for useful work,
//! * each level's hit latency for the accesses that reached it,
//! * the DRAM latency for LLC demand misses, divided by an effective
//!   memory-level-parallelism (MLP) factor bounded by the LLC MSHR file and
//!   the ROB.

use serde::{Deserialize, Serialize};

use crate::config::HierarchyConfig;
use crate::hierarchy::HierarchyReport;

/// Analytic cycles/IPC estimator derived from a [`HierarchyConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpcModel {
    width: usize,
    l2_latency: u64,
    llc_latency: u64,
    dram_latency: u64,
    mlp: f64,
}

impl IpcModel {
    /// Builds the model from a machine configuration.
    pub fn from_config(config: &HierarchyConfig) -> Self {
        // Effective MLP: bounded by the LLC MSHR file, discounted because
        // dependent misses serialize (pointer chasing reaches ~1).
        let mlp = (config.llc.mshr_entries as f64 / 16.0).clamp(1.0, 8.0);
        IpcModel {
            width: config.processor.width,
            l2_latency: config.l2.latency_cycles,
            llc_latency: config.llc.latency_cycles,
            dram_latency: config.dram.latency_cycles,
            mlp,
        }
    }

    /// Overrides the effective memory-level parallelism. A pointer-chasing
    /// workload (every miss depends on the previous one) should use 1.0.
    pub fn with_mlp(mut self, mlp: f64) -> Self {
        assert!(mlp >= 1.0, "MLP factor must be at least 1.0");
        self.mlp = mlp;
        self
    }

    /// Estimated cycles for `instr_count` instructions with the given miss
    /// counts at each level. `llc_demand_misses` excludes prefetch misses
    /// (prefetches do not stall the core).
    pub fn cycles(
        &self,
        instr_count: u64,
        l1_misses: u64,
        l2_misses: u64,
        llc_demand_misses: u64,
    ) -> f64 {
        let base = instr_count as f64 / self.width as f64;
        let l2 = l1_misses as f64 * self.l2_latency as f64 * 0.5;
        let llc = l2_misses as f64 * self.llc_latency as f64 * 0.5;
        let dram = llc_demand_misses as f64 * self.dram_latency as f64 / self.mlp;
        base + l2 + llc + dram
    }

    /// Estimated IPC for a hierarchy run, substituting `llc_demand_misses`
    /// for the baseline policy's count (so alternative LLC policies can be
    /// compared on the same L1/L2 behaviour).
    pub fn ipc(&self, report: &HierarchyReport, llc_demand_misses: u64) -> f64 {
        let l1_misses = report.l1i.misses + report.l1d.misses;
        let cycles =
            self.cycles(report.instr_count, l1_misses, report.l2.misses, llc_demand_misses);
        if cycles <= 0.0 {
            0.0
        } else {
            report.instr_count as f64 / cycles
        }
    }

    /// Estimated IPC when only LLC-level behaviour is simulated (the
    /// trace-database experiments replay LLC streams directly): hits pay the
    /// LLC latency, demand misses pay DRAM.
    pub fn ipc_from_llc(&self, instr_count: u64, llc_hits: u64, llc_demand_misses: u64) -> f64 {
        let base = instr_count as f64 / self.width as f64;
        let hits = llc_hits as f64 * self.llc_latency as f64 * 0.5;
        let dram = llc_demand_misses as f64 * self.dram_latency as f64 / self.mlp;
        let cycles = base + hits + dram;
        if cycles <= 0.0 {
            0.0
        } else {
            instr_count as f64 / cycles
        }
    }

    /// Relative speedup of `new` over `old` IPC, in percent.
    pub fn speedup_percent(old_ipc: f64, new_ipc: f64) -> f64 {
        if old_ipc <= 0.0 {
            0.0
        } else {
            (new_ipc / old_ipc - 1.0) * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CacheStats;

    fn report(instr: u64, l1_miss: u64, l2_miss: u64, llc_miss: u64) -> HierarchyReport {
        let l1d = CacheStats { misses: l1_miss, ..Default::default() };
        let l2 = CacheStats { misses: l2_miss, ..Default::default() };
        let llc = CacheStats { misses: llc_miss, demand_misses: llc_miss, ..Default::default() };
        HierarchyReport {
            llc_stream: Vec::new(),
            l1i: CacheStats::default(),
            l1d,
            l2,
            llc,
            prefetch_fills: 0,
            useful_prefetches: 0,
            instr_count: instr,
        }
    }

    #[test]
    fn fewer_misses_means_higher_ipc() {
        let model = IpcModel::from_config(&HierarchyConfig::table2());
        let r = report(1_000_000, 50_000, 20_000, 10_000);
        let slow = model.ipc(&r, 10_000);
        let fast = model.ipc(&r, 5_000);
        assert!(fast > slow);
    }

    #[test]
    fn perfect_cache_approaches_width() {
        let model = IpcModel::from_config(&HierarchyConfig::table2());
        let r = report(6_000_000, 0, 0, 0);
        let ipc = model.ipc(&r, 0);
        assert!((ipc - 6.0).abs() < 1e-9, "got {ipc}");
    }

    #[test]
    fn speedup_is_relative() {
        assert!((IpcModel::speedup_percent(1.0, 1.02) - 2.0).abs() < 1e-9);
        assert_eq!(IpcModel::speedup_percent(0.0, 1.0), 0.0);
    }

    #[test]
    fn mlp_reduces_dram_penalty() {
        let base = IpcModel::from_config(&HierarchyConfig::table2());
        let serial = base.clone().with_mlp(1.0);
        let parallel = base.with_mlp(8.0);
        let r = report(1_000_000, 0, 0, 50_000);
        assert!(parallel.ipc(&r, 50_000) > serial.ipc(&r, 50_000));
    }

    #[test]
    #[should_panic(expected = "at least 1.0")]
    fn mlp_below_one_rejected() {
        let _ = IpcModel::from_config(&HierarchyConfig::table2()).with_mlp(0.5);
    }
}
