//! Aggregate hit/miss counters for one cache level.

use serde::{Deserialize, Serialize};

use crate::access::AccessKind;

/// Hit/miss/eviction counters for a cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses (demand + prefetch).
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Demand (load/store/fetch) misses only.
    pub demand_misses: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Fills skipped because the policy chose to bypass.
    pub bypasses: u64,
    /// Prefetch accesses observed.
    pub prefetches: u64,
}

impl CacheStats {
    /// Records a hit of the given kind.
    pub fn record_hit(&mut self, kind: AccessKind) {
        self.accesses += 1;
        self.hits += 1;
        if kind == AccessKind::Prefetch {
            self.prefetches += 1;
        }
    }

    /// Records a miss of the given kind.
    pub fn record_miss(&mut self, kind: AccessKind) {
        self.accesses += 1;
        self.misses += 1;
        if kind.is_demand() {
            self.demand_misses += 1;
        } else {
            self.prefetches += 1;
        }
    }

    /// Miss rate in `[0, 1]`; zero when no accesses were recorded.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were recorded.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_accesses() {
        let stats = CacheStats::default();
        assert_eq!(stats.miss_rate(), 0.0);
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn rates_sum_to_one() {
        let mut stats = CacheStats::default();
        stats.record_hit(AccessKind::Load);
        stats.record_miss(AccessKind::Load);
        stats.record_miss(AccessKind::Prefetch);
        assert!((stats.miss_rate() + stats.hit_rate() - 1.0).abs() < 1e-12);
        assert_eq!(stats.demand_misses, 1);
        assert_eq!(stats.prefetches, 1);
    }
}
