//! # cachemind-sim
//!
//! Trace-driven, multi-level set-associative cache hierarchy simulator — the
//! ChampSim-style substrate of the CacheMind reproduction.
//!
//! The CacheMind paper consumes two things from its simulators (ChampSim and
//! gem5):
//!
//! 1. **Eviction-annotated LLC traces** — one record per last-level-cache
//!    access carrying PC, address, set, hit/miss, miss type, the evicted
//!    line, reuse distances, recency, a snapshot of the resident lines, a
//!    recent-access history, and the policy's per-line eviction scores
//!    (§4.3 of the paper). Those records are produced by [`replay::LlcReplay`].
//! 2. **First-order IPC estimates** so that use-case interventions (bypass,
//!    software prefetch, Mockingjay retraining) can be measured as speedups.
//!    Those come from [`timing::IpcModel`].
//!
//! The crate is deliberately self-contained: replacement policies plug in
//! through the [`replacement::ReplacementPolicy`] trait (implemented in the
//! `cachemind-policies` crate) and workloads are plain access streams
//! (produced by `cachemind-workloads`).
//!
//! # Example
//!
//! ```rust
//! use cachemind_sim::prelude::*;
//!
//! // A tiny direct-mapped cache with an LRU-by-default policy.
//! let config = CacheConfig::new("toy", 4, 2, 6);
//! let mut cache = SetAssociativeCache::new(config, RecencyPolicy::lru());
//!
//! let access = MemoryAccess::load(Pc::new(0x400000), Address::new(0x1000), 0);
//! let outcome = cache.access(&AccessContext::demand(0, &access, cache.set_of(Address::new(0x1000))));
//! assert!(!outcome.hit); // cold miss
//! ```

pub mod access;
pub mod addr;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;
pub mod replacement;
pub mod replay;
pub mod reuse;
pub mod scenario;
pub mod stats;
pub mod sweep;
pub mod timing;

pub use access::{AccessKind, MemoryAccess};
pub use addr::{Address, LineAddr, Pc, SetId};
pub use cache::{AccessOutcome, LineMeta, SetAssociativeCache, SetView, SetViewBuf};
pub use config::{CacheConfig, DramConfig, HierarchyConfig, MachineConfig, ProcessorConfig};
pub use hierarchy::{CacheHierarchy, HierarchyReport};
pub use mshr::Mshr;
pub use prefetch::{Prefetcher, PrefetcherKind};
pub use replacement::{AccessContext, Decision, RecencyPolicy, ReplacementPolicy};
pub use replay::{EvictionRecord, LlcReplay, MissType, ReplayReport, ReplaySummary};
pub use reuse::ReuseOracle;
pub use scenario::{ScenarioSelector, SelectorParseError};
pub use stats::CacheStats;
pub use sweep::{
    AxisTotal, ScenarioCell, ScenarioGrid, ScenarioReport, SweepCell, SweepGrid, SweepReport,
    SweepStream,
};
pub use timing::IpcModel;

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::access::{AccessKind, MemoryAccess};
    pub use crate::addr::{Address, LineAddr, Pc, SetId};
    pub use crate::cache::{AccessOutcome, LineMeta, SetAssociativeCache, SetView, SetViewBuf};
    pub use crate::config::{
        CacheConfig, DramConfig, HierarchyConfig, MachineConfig, ProcessorConfig,
    };
    pub use crate::hierarchy::{CacheHierarchy, HierarchyReport};
    pub use crate::prefetch::{Prefetcher, PrefetcherKind};
    pub use crate::replacement::{AccessContext, Decision, RecencyPolicy, ReplacementPolicy};
    pub use crate::replay::{EvictionRecord, LlcReplay, MissType, ReplayReport, ReplaySummary};
    pub use crate::reuse::ReuseOracle;
    pub use crate::scenario::{ScenarioSelector, SelectorParseError};
    pub use crate::stats::CacheStats;
    pub use crate::sweep::{
        AxisTotal, PolicyTotal, ScenarioCell, ScenarioGrid, ScenarioReport, SweepCell, SweepError,
        SweepGrid, SweepReport, SweepStream,
    };
    pub use crate::timing::IpcModel;
}
