//! Strongly-typed addresses, program counters, line addresses and set ids.
//!
//! The CacheMind trace schema talks about four kinds of integers that are
//! easy to mix up: byte addresses, cache-line addresses, program counters and
//! set indices. Newtypes keep them statically distinct (C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A byte-granularity virtual memory address.
///
/// ```rust
/// use cachemind_sim::addr::Address;
/// let a = Address::new(0x35e798a637f);
/// assert_eq!(a.line(6).value(), 0x35e798a637f >> 6);
/// assert_eq!(format!("{a}"), "0x35e798a637f");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw 64-bit value.
    pub const fn new(value: u64) -> Self {
        Address(value)
    }

    /// The raw 64-bit value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The cache-line address for a `1 << line_size_log2` byte line.
    pub const fn line(self, line_size_log2: u32) -> LineAddr {
        LineAddr(self.0 >> line_size_log2)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(value: u64) -> Self {
        Address(value)
    }
}

/// A cache-line address (a byte address with the offset bits stripped).
///
/// Line addresses are what the replacement machinery operates on: two byte
/// addresses within the same line map to the same [`LineAddr`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw (already shifted) value.
    pub const fn new(value: u64) -> Self {
        LineAddr(value)
    }

    /// The raw line number.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Reconstructs the base byte address of this line.
    pub const fn base_address(self, line_size_log2: u32) -> Address {
        Address(self.0 << line_size_log2)
    }

    /// The set index for a cache with `1 << sets_log2` sets.
    pub const fn set(self, sets_log2: u32) -> SetId {
        SetId((self.0 & ((1 << sets_log2) - 1)) as usize)
    }

    /// The tag for a cache with `1 << sets_log2` sets.
    pub const fn tag(self, sets_log2: u32) -> u64 {
        self.0 >> sets_log2
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(value: u64) -> Self {
        LineAddr(value)
    }
}

/// A program counter: the address of the instruction performing an access.
///
/// In CacheMind the PC is the pivot of every analysis — it is "a pointer to
/// the line of code that must change in software" (paper §1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pc(u64);

impl Pc {
    /// Creates a PC from a raw value.
    pub const fn new(value: u64) -> Self {
        Pc(value)
    }

    /// The raw 64-bit value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Pc {
    fn from(value: u64) -> Self {
        Pc(value)
    }
}

/// Index of a cache set within one cache level.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SetId(usize);

impl SetId {
    /// Creates a set id from a raw index.
    pub const fn new(index: usize) -> Self {
        SetId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<usize> for SetId {
    fn from(value: usize) -> Self {
        SetId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_strips_offset_bits() {
        let a = Address::new(0x1234_5678);
        let b = Address::new(0x1234_567F);
        assert_eq!(a.line(6), b.line(6));
        assert_ne!(a.line(0), b.line(0));
    }

    #[test]
    fn set_and_tag_partition_the_line_address() {
        let line = LineAddr::new(0xABCDEF);
        let sets_log2 = 11;
        let reassembled = (line.tag(sets_log2) << sets_log2) | line.set(sets_log2).index() as u64;
        assert_eq!(reassembled, line.value());
    }

    #[test]
    fn set_is_bounded_by_set_count() {
        for raw in [0u64, 1, 63, 64, 12345, u64::MAX] {
            let line = LineAddr::new(raw);
            assert!(line.set(6).index() < 64);
        }
    }

    #[test]
    fn base_address_round_trips() {
        let a = Address::new(0x35e798a637f);
        let line = a.line(6);
        assert_eq!(line.base_address(6).value(), a.value() & !0x3F);
    }

    #[test]
    fn set_index_extraction_across_geometries() {
        // A full byte address decomposes as [tag | set | line offset]. For a
        // 64 B line (6 offset bits) and 2^s sets, the set index is bits
        // [6, 6+s) of the byte address.
        let a = Address::new(0b1101_0110_1011_0100_1110); // arbitrary pattern
        for sets_log2 in [0u32, 1, 4, 6, 11] {
            let expect = (a.value() >> 6) & ((1 << sets_log2) - 1);
            assert_eq!(a.line(6).set(sets_log2).index() as u64, expect, "sets_log2 = {sets_log2}");
        }
        // One set (sets_log2 = 0): every address maps to set 0.
        assert_eq!(Address::new(u64::MAX).line(6).set(0).index(), 0);
    }

    #[test]
    fn set_index_ignores_offset_bits_and_uses_line_bits() {
        // Two addresses in the same 64 B line share a set under every
        // geometry; the next line lands in the adjacent set.
        let base = Address::new(0x4000);
        let same_line = Address::new(0x403F);
        let next_line = Address::new(0x4040);
        for sets_log2 in [1u32, 4, 8] {
            assert_eq!(base.line(6).set(sets_log2), same_line.line(6).set(sets_log2));
            assert_eq!(
                next_line.line(6).set(sets_log2).index(),
                (base.line(6).set(sets_log2).index() + 1) % (1 << sets_log2)
            );
        }
        // Larger lines consume more offset bits: with 128 B lines, 0x4040
        // stays inside 0x4000's line.
        assert_eq!(base.line(7), next_line.line(7));
    }

    #[test]
    fn display_is_hexadecimal() {
        assert_eq!(format!("{}", Pc::new(0x401e31)), "0x401e31");
        assert_eq!(format!("{}", Address::new(0x10)), "0x10");
        assert_eq!(format!("{}", SetId::new(42)), "42");
    }
}
