//! Offline reuse/recency oracle over an access stream.
//!
//! The paper's trace schema records, for every access, the *reuse distance*
//! of the accessed line (how many accesses until it is needed again), the
//! reuse distance of the evicted line, and the *recency* of the accessed
//! address (how many accesses since it was last touched). Belady's optimal
//! policy also needs the next-use index of every access. All of this comes
//! from a single two-pass precomputation over the line-address stream.

use crate::access::MemoryAccess;
use crate::addr::LineAddr;

/// Sentinel meaning "never referenced again".
pub const NEVER: u64 = u64::MAX;

/// SplitMix64 finalizer — the multiplicative mixer behind the interner's
/// open-addressing probe. Deterministic across runs and platforms.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

const EMPTY_KEY: u64 = u64::MAX;

#[derive(Clone, Copy)]
struct InternSlot {
    key: u64,
    /// Stream index of the most recent access to the line.
    last: usize,
    /// Dense id assigned at first touch.
    id: u32,
}

/// A linear-probing line interner: the single-pass oracle build is a
/// hash-lookup per access, and the std `HashMap`'s SipHash dominates it.
/// Open addressing with a multiplicative mix is several times faster and
/// just as deterministic — the oracle's outputs depend only on stream
/// order, never on table layout.
struct LineInterner {
    slots: Vec<InternSlot>,
    mask: usize,
    len: usize,
}

impl LineInterner {
    fn new() -> Self {
        let cap = 4096;
        LineInterner {
            slots: vec![InternSlot { key: EMPTY_KEY, last: 0, id: 0 }; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        let old = std::mem::replace(
            &mut self.slots,
            vec![InternSlot { key: EMPTY_KEY, last: 0, id: 0 }; cap],
        );
        self.mask = cap - 1;
        for slot in old {
            if slot.key != EMPTY_KEY {
                let mut h = mix64(slot.key) as usize & self.mask;
                while self.slots[h].key != EMPTY_KEY {
                    h = (h + 1) & self.mask;
                }
                self.slots[h] = slot;
            }
        }
    }

    /// The slot holding `key`, or the empty slot where it belongs.
    fn probe(&mut self, key: u64) -> &mut InternSlot {
        debug_assert_ne!(key, EMPTY_KEY, "line address collides with the interner sentinel");
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mut h = mix64(key) as usize & self.mask;
        loop {
            let k = self.slots[h].key;
            if k == key || k == EMPTY_KEY {
                return &mut self.slots[h];
            }
            h = (h + 1) & self.mask;
        }
    }
}

/// Precomputed previous/next occurrence indices for an access stream.
///
/// Alongside the reuse indices the oracle interns every distinct line into a
/// dense id (`0..num_lines`, assigned in first-touch order), which lets the
/// replay hot loop replace per-line hash maps with flat arrays indexed by
/// [`ReuseOracle::line_id`].
#[derive(Debug, Clone)]
pub struct ReuseOracle {
    lines: Vec<LineAddr>,
    next_use: Vec<u64>,
    prev_use: Vec<u64>,
    first_touch: Vec<bool>,
    line_ids: Vec<u32>,
    num_lines: u32,
}

impl ReuseOracle {
    /// Builds the oracle from an access stream under the given line size.
    pub fn from_accesses(accesses: &[MemoryAccess], line_size_log2: u32) -> Self {
        let lines: Vec<LineAddr> =
            accesses.iter().map(|a| a.address.line(line_size_log2)).collect();
        Self::from_lines(lines)
    }

    /// Builds the oracle from a pre-extracted line-address stream.
    pub fn from_lines(lines: Vec<LineAddr>) -> Self {
        let n = lines.len();
        let mut next_use = vec![NEVER; n];
        let mut prev_use = vec![NEVER; n];
        let mut first_touch = vec![false; n];
        let mut line_ids = vec![0u32; n];
        let mut num_lines = 0u32;

        let mut last_seen = LineInterner::new();
        for (i, &line) in lines.iter().enumerate() {
            let slot = last_seen.probe(line.value());
            if slot.key == EMPTY_KEY {
                slot.key = line.value();
                slot.last = i;
                slot.id = num_lines;
                last_seen.len += 1;
                first_touch[i] = true;
                line_ids[i] = num_lines;
                num_lines += 1;
            } else {
                next_use[slot.last] = i as u64;
                prev_use[i] = slot.last as u64;
                line_ids[i] = slot.id;
                slot.last = i;
            }
        }
        ReuseOracle { lines, next_use, prev_use, first_touch, line_ids, num_lines }
    }

    /// Number of accesses covered.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The line address of access `i`.
    pub fn line(&self, i: usize) -> LineAddr {
        self.lines[i]
    }

    /// Index of the next access to the same line, or [`NEVER`].
    pub fn next_use(&self, i: usize) -> u64 {
        self.next_use[i]
    }

    /// Index of the previous access to the same line, or [`NEVER`].
    pub fn prev_use(&self, i: usize) -> u64 {
        self.prev_use[i]
    }

    /// Whether access `i` is the first touch of its line (compulsory miss).
    pub fn is_first_touch(&self, i: usize) -> bool {
        self.first_touch[i]
    }

    /// Dense id of the line of access `i` (`0..num_lines`, first-touch
    /// order). Every access to the same line shares one id.
    pub fn line_id(&self, i: usize) -> u32 {
        self.line_ids[i]
    }

    /// Number of distinct lines in the stream.
    pub fn num_lines(&self) -> u32 {
        self.num_lines
    }

    /// Forward reuse distance of access `i`: the number of accesses until the
    /// line is needed again (`None` when never). Matches the paper's
    /// "needed again in N accesses" phrasing.
    pub fn forward_reuse_distance(&self, i: usize) -> Option<u64> {
        let n = self.next_use[i];
        (n != NEVER).then(|| n - i as u64)
    }

    /// Backward recency of access `i`: accesses since the line was last
    /// touched (`None` for a first touch).
    pub fn recency(&self, i: usize) -> Option<u64> {
        let p = self.prev_use[i];
        (p != NEVER).then(|| i as u64 - p)
    }

    /// A qualitative label for the recency value, as the paper's
    /// `accessed_address_recency` textual column.
    pub fn recency_label(&self, i: usize) -> &'static str {
        match self.recency(i) {
            None => "first access",
            Some(d) if d <= 64 => "very recent",
            Some(d) if d <= 1024 => "recent",
            Some(d) if d <= 16384 => "distant",
            Some(_) => "very distant",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(seq: &[u64]) -> ReuseOracle {
        ReuseOracle::from_lines(seq.iter().copied().map(LineAddr::new).collect())
    }

    #[test]
    fn next_and_prev_are_symmetric() {
        let o = oracle(&[1, 2, 1, 3, 2, 1]);
        assert_eq!(o.next_use(0), 2);
        assert_eq!(o.prev_use(2), 0);
        assert_eq!(o.next_use(2), 5);
        assert_eq!(o.prev_use(5), 2);
        assert_eq!(o.next_use(3), NEVER);
        assert_eq!(o.prev_use(3), NEVER);
    }

    #[test]
    fn first_touch_marks_compulsory() {
        let o = oracle(&[1, 2, 1]);
        assert!(o.is_first_touch(0));
        assert!(o.is_first_touch(1));
        assert!(!o.is_first_touch(2));
    }

    #[test]
    fn forward_distance_counts_accesses() {
        let o = oracle(&[9, 5, 9]);
        assert_eq!(o.forward_reuse_distance(0), Some(2));
        assert_eq!(o.forward_reuse_distance(1), None);
        assert_eq!(o.recency(2), Some(2));
        assert_eq!(o.recency(0), None);
    }

    #[test]
    fn recency_labels_are_ordered() {
        let o = oracle(&[1, 1]);
        assert_eq!(o.recency_label(0), "first access");
        assert_eq!(o.recency_label(1), "very recent");
    }

    #[test]
    fn line_ids_are_dense_and_first_touch_ordered() {
        let o = oracle(&[9, 5, 9, 7, 5]);
        assert_eq!(o.num_lines(), 3);
        assert_eq!(o.line_id(0), 0); // 9 first
        assert_eq!(o.line_id(1), 1); // 5 second
        assert_eq!(o.line_id(2), 0); // 9 again
        assert_eq!(o.line_id(3), 2); // 7 third
        assert_eq!(o.line_id(4), 1); // 5 again
    }
}
