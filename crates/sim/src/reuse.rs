//! Offline reuse/recency oracle over an access stream.
//!
//! The paper's trace schema records, for every access, the *reuse distance*
//! of the accessed line (how many accesses until it is needed again), the
//! reuse distance of the evicted line, and the *recency* of the accessed
//! address (how many accesses since it was last touched). Belady's optimal
//! policy also needs the next-use index of every access. All of this comes
//! from a single two-pass precomputation over the line-address stream.

use std::collections::HashMap;

use crate::access::MemoryAccess;
use crate::addr::LineAddr;

/// Sentinel meaning "never referenced again".
pub const NEVER: u64 = u64::MAX;

/// Precomputed previous/next occurrence indices for an access stream.
#[derive(Debug, Clone)]
pub struct ReuseOracle {
    lines: Vec<LineAddr>,
    next_use: Vec<u64>,
    prev_use: Vec<u64>,
    first_touch: Vec<bool>,
}

impl ReuseOracle {
    /// Builds the oracle from an access stream under the given line size.
    pub fn from_accesses(accesses: &[MemoryAccess], line_size_log2: u32) -> Self {
        let lines: Vec<LineAddr> =
            accesses.iter().map(|a| a.address.line(line_size_log2)).collect();
        Self::from_lines(lines)
    }

    /// Builds the oracle from a pre-extracted line-address stream.
    pub fn from_lines(lines: Vec<LineAddr>) -> Self {
        let n = lines.len();
        let mut next_use = vec![NEVER; n];
        let mut prev_use = vec![NEVER; n];
        let mut first_touch = vec![false; n];

        let mut last_seen: HashMap<LineAddr, usize> = HashMap::new();
        for (i, &line) in lines.iter().enumerate() {
            match last_seen.insert(line, i) {
                Some(prev) => {
                    next_use[prev] = i as u64;
                    prev_use[i] = prev as u64;
                }
                None => first_touch[i] = true,
            }
        }
        ReuseOracle { lines, next_use, prev_use, first_touch }
    }

    /// Number of accesses covered.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The line address of access `i`.
    pub fn line(&self, i: usize) -> LineAddr {
        self.lines[i]
    }

    /// Index of the next access to the same line, or [`NEVER`].
    pub fn next_use(&self, i: usize) -> u64 {
        self.next_use[i]
    }

    /// Index of the previous access to the same line, or [`NEVER`].
    pub fn prev_use(&self, i: usize) -> u64 {
        self.prev_use[i]
    }

    /// Whether access `i` is the first touch of its line (compulsory miss).
    pub fn is_first_touch(&self, i: usize) -> bool {
        self.first_touch[i]
    }

    /// Forward reuse distance of access `i`: the number of accesses until the
    /// line is needed again (`None` when never). Matches the paper's
    /// "needed again in N accesses" phrasing.
    pub fn forward_reuse_distance(&self, i: usize) -> Option<u64> {
        let n = self.next_use[i];
        (n != NEVER).then(|| n - i as u64)
    }

    /// Backward recency of access `i`: accesses since the line was last
    /// touched (`None` for a first touch).
    pub fn recency(&self, i: usize) -> Option<u64> {
        let p = self.prev_use[i];
        (p != NEVER).then(|| i as u64 - p)
    }

    /// A qualitative label for the recency value, as the paper's
    /// `accessed_address_recency` textual column.
    pub fn recency_label(&self, i: usize) -> &'static str {
        match self.recency(i) {
            None => "first access",
            Some(d) if d <= 64 => "very recent",
            Some(d) if d <= 1024 => "recent",
            Some(d) if d <= 16384 => "distant",
            Some(_) => "very distant",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(seq: &[u64]) -> ReuseOracle {
        ReuseOracle::from_lines(seq.iter().copied().map(LineAddr::new).collect())
    }

    #[test]
    fn next_and_prev_are_symmetric() {
        let o = oracle(&[1, 2, 1, 3, 2, 1]);
        assert_eq!(o.next_use(0), 2);
        assert_eq!(o.prev_use(2), 0);
        assert_eq!(o.next_use(2), 5);
        assert_eq!(o.prev_use(5), 2);
        assert_eq!(o.next_use(3), NEVER);
        assert_eq!(o.prev_use(3), NEVER);
    }

    #[test]
    fn first_touch_marks_compulsory() {
        let o = oracle(&[1, 2, 1]);
        assert!(o.is_first_touch(0));
        assert!(o.is_first_touch(1));
        assert!(!o.is_first_touch(2));
    }

    #[test]
    fn forward_distance_counts_accesses() {
        let o = oracle(&[9, 5, 9]);
        assert_eq!(o.forward_reuse_distance(0), Some(2));
        assert_eq!(o.forward_reuse_distance(1), None);
        assert_eq!(o.recency(2), Some(2));
        assert_eq!(o.recency(0), None);
    }

    #[test]
    fn recency_labels_are_ordered() {
        let o = oracle(&[1, 1]);
        assert_eq!(o.recency_label(0), "first access");
        assert_eq!(o.recency_label(1), "very recent");
    }
}
