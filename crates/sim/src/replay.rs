//! LLC replay with full eviction annotation — the producer of the paper's
//! per-access trace schema (§4.3).
//!
//! [`LlcReplay`] replays a captured LLC access stream against one
//! replacement policy and emits an [`EvictionRecord`] per access carrying:
//! hit/miss outcome, miss taxonomy (compulsory/capacity/conflict, via a
//! fully-associative LRU shadow cache), the evicted line and its reuse
//! distance, the accessed line's reuse distance and recency, a snapshot of
//! the resident `(address, pc)` pairs, the recent access history, and the
//! policy's per-line eviction scores.
//!
//! The replay loop is allocation-free in steady state: line addresses are
//! pre-split into `(LineAddr, SetId)` at construction, the shadow cache and
//! the resident-next-use table are flat arrays indexed by the oracle's
//! dense line ids (no per-access hashing), the access history lives in a
//! fixed ring buffer, and eviction scores go through one reused scratch
//! buffer. [`LlcReplay::run_summary`] additionally skips record emission
//! entirely for consumers (like the sweep engine) that only need the
//! aggregate counters — see `docs/PERFORMANCE.md`.

use serde::{Deserialize, Serialize};

use crate::access::{AccessKind, MemoryAccess};
use crate::addr::{Address, Pc, SetId};
use crate::cache::SetAssociativeCache;
use crate::config::CacheConfig;
use crate::replacement::{AccessContext, ReplacementPolicy};
use crate::reuse::{ReuseOracle, NEVER};
use crate::stats::CacheStats;

/// Miss taxonomy, as the paper's `miss_type` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MissType {
    /// First touch of the line anywhere in the stream.
    Compulsory,
    /// Would also miss in a fully-associative cache of the same capacity.
    Capacity,
    /// Hits in the fully-associative shadow but missed here: a set-mapping
    /// artefact.
    Conflict,
}

impl MissType {
    /// The label used in trace text ("Capacity", "Conflict", "Compulsory").
    pub const fn label(self) -> &'static str {
        match self {
            MissType::Compulsory => "Compulsory",
            MissType::Capacity => "Capacity",
            MissType::Conflict => "Conflict",
        }
    }
}

/// One fully-annotated LLC access — the row type of the external database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvictionRecord {
    /// Position within the LLC stream.
    pub index: u64,
    /// Program counter issuing the access.
    pub pc: Pc,
    /// Full byte address accessed.
    pub address: Address,
    /// Access kind (load/store/fetch/prefetch) — the "access types"
    /// dimension the paper's gem5 extension adds.
    pub kind: crate::access::AccessKind,
    /// The cache set the access mapped to.
    pub set: SetId,
    /// Whether the access missed.
    pub is_miss: bool,
    /// Miss taxonomy (misses only).
    pub miss_type: Option<MissType>,
    /// Line evicted by this access, if any (reconstructed byte address).
    pub evicted_address: Option<Address>,
    /// Forward reuse distance of the accessed line (accesses until needed
    /// again; `None` = never needed again).
    pub accessed_reuse_distance: Option<u64>,
    /// Forward reuse distance of the evicted line at eviction time.
    pub evicted_reuse_distance: Option<u64>,
    /// Accesses since the accessed line was last touched (`None` = first
    /// touch).
    pub recency: Option<u64>,
    /// Snapshot of `(line base address, inserting PC)` for the accessed set,
    /// taken before the access.
    pub resident_lines: Vec<(Address, Pc)>,
    /// The last few `(pc, address)` accesses preceding this one.
    pub access_history: Vec<(Pc, Address)>,
    /// The policy's per-line eviction scores `(line base address, score)`
    /// for the accessed set, taken before the access.
    pub eviction_scores: Vec<(Address, u64)>,
    /// Whether the policy bypassed the fill.
    pub bypassed: bool,
}

impl EvictionRecord {
    /// Qualitative recency label, matching the paper's textual
    /// `accessed_address_recency` column ("first access", "very recent",
    /// "recent", "distant", "very distant").
    pub fn recency_label(&self) -> &'static str {
        match self.recency {
            None => "first access",
            Some(d) if d <= 64 => "very recent",
            Some(d) if d <= 1024 => "recent",
            Some(d) if d <= 16384 => "distant",
            Some(_) => "very distant",
        }
    }
}

/// Aggregate results of one policy replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Stable policy name (`"lru"`, `"belady"`, ...).
    pub policy: String,
    /// Per-access records.
    pub records: Vec<EvictionRecord>,
    /// Aggregate counters.
    pub stats: CacheStats,
    /// Evictions where the evicted line was needed *sooner* than the
    /// inserted line (the paper's "wrong evictions").
    pub wrong_evictions: u64,
    /// Capacity-miss count.
    pub capacity_misses: u64,
    /// Conflict-miss count.
    pub conflict_misses: u64,
    /// Compulsory-miss count.
    pub compulsory_misses: u64,
}

impl ReplayReport {
    /// Miss rate over the replayed stream.
    pub fn miss_rate(&self) -> f64 {
        self.stats.miss_rate()
    }

    /// Hit rate over the replayed stream.
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }

    /// Fraction of evictions that were "wrong" in the paper's sense.
    pub fn wrong_eviction_rate(&self) -> f64 {
        if self.stats.evictions == 0 {
            0.0
        } else {
            self.wrong_evictions as f64 / self.stats.evictions as f64
        }
    }

    /// Pearson correlation between accessed-address recency and miss
    /// outcome, as reported in the paper's metadata string. Records without
    /// a recency value (first touches) are excluded.
    pub fn recency_miss_correlation(&self) -> f64 {
        let pairs: Vec<(f64, f64)> = self
            .records
            .iter()
            .filter_map(|r| r.recency.map(|rec| (rec as f64, r.is_miss as u8 as f64)))
            .collect();
        pearson(&pairs)
    }
}

/// Record-free results of one policy replay — what
/// [`LlcReplay::run_summary`] returns. Carries exactly the aggregates the
/// sweep engine reduces into a `ScenarioCell`, including the streaming
/// equivalent of `prefetch_usefulness` over the (never materialised)
/// records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplaySummary {
    /// Stable policy name (`"lru"`, `"belady"`, ...).
    pub policy: String,
    /// Aggregate counters.
    pub stats: CacheStats,
    /// Evictions where the evicted line was needed sooner than the
    /// inserted line.
    pub wrong_evictions: u64,
    /// Capacity-miss count.
    pub capacity_misses: u64,
    /// Conflict-miss count.
    pub conflict_misses: u64,
    /// Compulsory-miss count.
    pub compulsory_misses: u64,
    /// Prefetch accesses that filled a line (prefetch misses, not
    /// bypassed).
    pub prefetch_fills: u64,
    /// Demand hits served from a still-pending prefetched line.
    pub useful_prefetches: u64,
}

impl ReplaySummary {
    /// Miss rate over the replayed stream.
    pub fn miss_rate(&self) -> f64 {
        self.stats.miss_rate()
    }
}

fn pearson(pairs: &[(f64, f64)]) -> f64 {
    let n = pairs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let (sx, sy): (f64, f64) = pairs.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
    let (mx, my) = (sx / n, sy / n);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for &(x, y) in pairs {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

const NIL: u32 = u32::MAX;

/// A fully-associative LRU shadow cache used to split capacity from conflict
/// misses. An intrusive doubly-linked list over the oracle's dense line ids
/// (LRU at `head`, MRU at `tail`): O(1) per access, no hashing, no
/// allocation after construction. Semantically identical to the former
/// `HashMap`+`BTreeMap` implementation — each touch moves the line to the
/// MRU end and the LRU end is evicted past capacity.
#[derive(Debug)]
struct ShadowFaLru {
    capacity: usize,
    prev: Vec<u32>,
    next: Vec<u32>,
    resident: Vec<bool>,
    head: u32,
    tail: u32,
    len: usize,
}

impl ShadowFaLru {
    fn new(capacity: usize, num_lines: u32) -> Self {
        let n = num_lines as usize;
        ShadowFaLru {
            capacity,
            prev: vec![NIL; n],
            next: vec![NIL; n],
            resident: vec![false; n],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    fn unlink(&mut self, id: u32) {
        let (p, n) = (self.prev[id as usize], self.next[id as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
    }

    fn push_tail(&mut self, id: u32) {
        self.prev[id as usize] = self.tail;
        self.next[id as usize] = NIL;
        if self.tail != NIL {
            self.next[self.tail as usize] = id;
        } else {
            self.head = id;
        }
        self.tail = id;
    }

    /// Touches line `id`; returns whether it was present.
    fn touch(&mut self, id: u32) -> bool {
        let present = self.resident[id as usize];
        if present {
            self.unlink(id);
            self.push_tail(id);
        } else {
            self.resident[id as usize] = true;
            self.push_tail(id);
            self.len += 1;
            if self.len > self.capacity {
                let victim = self.head;
                self.unlink(victim);
                self.resident[victim as usize] = false;
                self.len -= 1;
            }
        }
        present
    }
}

/// Everything `run_core` accumulates; sliced into [`ReplayReport`] or
/// [`ReplaySummary`] by the public entry points.
struct CoreOut {
    records: Vec<EvictionRecord>,
    stats: CacheStats,
    wrong_evictions: u64,
    capacity_misses: u64,
    conflict_misses: u64,
    compulsory_misses: u64,
    prefetch_fills: u64,
    useful_prefetches: u64,
}

/// Replays an LLC access stream against a replacement policy, producing the
/// fully-annotated trace.
///
/// # Example
///
/// ```rust
/// use cachemind_sim::prelude::*;
///
/// let stream = vec![
///     MemoryAccess::load(Pc::new(0x401000), Address::new(0x0000), 0),
///     MemoryAccess::load(Pc::new(0x401000), Address::new(0x0000), 1),
/// ];
/// let replay = LlcReplay::new(CacheConfig::small_llc(), &stream);
/// let report = replay.run(RecencyPolicy::lru());
/// assert_eq!(report.records.len(), 2);
/// assert!(report.records[1].is_miss == false);
/// ```
#[derive(Debug)]
pub struct LlcReplay {
    config: CacheConfig,
    stream: Vec<MemoryAccess>,
    oracle: ReuseOracle,
    /// Pre-split set index of every access under `config` — computed once
    /// at construction and shared by every policy replay.
    sets: Vec<SetId>,
    /// Per-access shadow FA-LRU residency (`true` = the line was present in
    /// a fully-associative LRU cache of the same capacity when accessed).
    /// The shadow's evolution depends only on the stream and the geometry —
    /// never on the replayed policy — so it is computed once here and
    /// shared by every policy replay instead of being re-simulated per
    /// cell.
    in_shadow: Vec<bool>,
    history_len: usize,
}

impl LlcReplay {
    /// Prepares a replay of `stream` under the given LLC geometry, building
    /// the reuse oracle (and the per-access `(LineAddr, SetId)` split)
    /// internally.
    pub fn new(config: CacheConfig, stream: &[MemoryAccess]) -> Self {
        Self::from_stream(config, stream.to_vec())
    }

    /// Like [`LlcReplay::new`], but takes ownership of the stream — callers
    /// that already hold an owned LLC stream (the hierarchy filter) avoid a
    /// full copy.
    pub fn from_stream(config: CacheConfig, stream: Vec<MemoryAccess>) -> Self {
        let oracle = ReuseOracle::from_accesses(&stream, config.line_size_log2);
        let sets = (0..oracle.len()).map(|i| oracle.line(i).set(config.sets_log2)).collect();
        let mut shadow = ShadowFaLru::new(config.capacity_lines(), oracle.num_lines());
        let in_shadow = (0..oracle.len()).map(|i| shadow.touch(oracle.line_id(i))).collect();
        LlcReplay { config, stream, oracle, sets, in_shadow, history_len: 8 }
    }

    /// Number of `(pc, address)` entries kept in each record's access
    /// history (default 8).
    pub fn with_history_len(mut self, len: usize) -> Self {
        self.history_len = len;
        self
    }

    /// The reuse oracle for the prepared stream.
    pub fn oracle(&self) -> &ReuseOracle {
        &self.oracle
    }

    /// The prepared LLC stream.
    pub fn stream(&self) -> &[MemoryAccess] {
        &self.stream
    }

    /// Runs the replay with `policy`, consuming nothing so multiple policies
    /// can replay the identical stream.
    pub fn run<P: ReplacementPolicy>(&self, policy: P) -> ReplayReport {
        let policy_name = policy.name().to_owned();
        let out = self.run_core::<P, true>(policy);
        ReplayReport {
            policy: policy_name,
            records: out.records,
            stats: out.stats,
            wrong_evictions: out.wrong_evictions,
            capacity_misses: out.capacity_misses,
            conflict_misses: out.conflict_misses,
            compulsory_misses: out.compulsory_misses,
        }
    }

    /// Runs the replay without materialising per-access records — the
    /// fast path for consumers that only reduce to aggregates (the sweep
    /// engine). Counters are identical to [`LlcReplay::run`]'s, and
    /// `(prefetch_fills, useful_prefetches)` equals what
    /// `prefetch_usefulness` would report over the full records.
    pub fn run_summary<P: ReplacementPolicy>(&self, policy: P) -> ReplaySummary {
        let policy_name = policy.name().to_owned();
        let out = self.run_core::<P, false>(policy);
        ReplaySummary {
            policy: policy_name,
            stats: out.stats,
            wrong_evictions: out.wrong_evictions,
            capacity_misses: out.capacity_misses,
            conflict_misses: out.conflict_misses,
            compulsory_misses: out.compulsory_misses,
            prefetch_fills: out.prefetch_fills,
            useful_prefetches: out.useful_prefetches,
        }
    }

    /// The shared replay core. `EMIT` selects full record emission (the
    /// trace-producing path) or the record-free summary path; both drive
    /// the cache and the wrong-eviction accounting identically (and read
    /// the same precomputed shadow residency), so every counter agrees
    /// between the two.
    fn run_core<P: ReplacementPolicy, const EMIT: bool>(&self, policy: P) -> CoreOut {
        let mut cache = SetAssociativeCache::new(self.config.clone(), policy);
        let n = self.stream.len();
        let num_lines = self.oracle.num_lines();
        let ways = self.config.ways;
        let line_bits = self.config.line_size_log2;

        // Next-use index of every currently-resident line (by dense line
        // id), refreshed on access; NEVER doubles as "not resident".
        let mut resident_next_use: Vec<u64> = vec![NEVER; num_lines as usize];
        // Dense line id currently occupying each (set, way) slot, maintained
        // on fills — turns an eviction outcome into a line id without a
        // reverse map. Slots are only read after an eviction, which implies
        // an earlier fill wrote them.
        let mut way_line_id: Vec<u32> = vec![NIL; self.config.capacity_lines()];
        // Streaming prefetch-usefulness state (summary mode only).
        let mut pending: Vec<bool> =
            if EMIT { Vec::new() } else { vec![false; num_lines as usize] };

        // Fixed ring buffer replacing the VecDeque history (record mode only).
        let hist_cap = if EMIT { self.history_len } else { 0 };
        let mut hist_buf: Vec<(Pc, Address)> = vec![(Pc::new(0), Address::new(0)); hist_cap];
        let mut hist_pos = 0usize;
        let mut hist_len = 0usize;
        // Reused eviction-score scratch: one allocation for the whole run.
        let mut scores_buf: Vec<u64> = Vec::with_capacity(ways);

        let mut records = Vec::with_capacity(if EMIT { n } else { 0 });
        let mut wrong_evictions = 0;
        let mut capacity_misses = 0;
        let mut conflict_misses = 0;
        let mut compulsory_misses = 0;
        let mut prefetch_fills = 0;
        let mut useful_prefetches = 0;

        for (i, access) in self.stream.iter().enumerate() {
            let idx = i as u64;
            let line = self.oracle.line(i);
            let lid = self.oracle.line_id(i) as usize;
            let set = self.sets[i];
            let next_use = self.oracle.next_use(i);

            // Pre-access snapshots (record mode only).
            let mut resident_lines = Vec::new();
            let mut eviction_scores = Vec::new();
            let mut access_history = Vec::new();
            if EMIT {
                let view = cache.set_view(set);
                cache.line_scores_into(set, idx, &mut scores_buf);
                resident_lines.reserve_exact(ways);
                eviction_scores.reserve_exact(ways);
                for w in 0..view.len() {
                    if let Some(l) = view.line(w) {
                        let base = l.base_address(line_bits);
                        resident_lines.push((base, view.insert_pc(w)));
                        eviction_scores.push((base, scores_buf[w]));
                    }
                }
                // Most recent first.
                access_history.reserve_exact(hist_len);
                for k in 1..=hist_len {
                    access_history.push(hist_buf[(hist_pos + hist_cap - k) % hist_cap]);
                }
            }

            // Miss classification uses the precomputed shadow residency
            // (the shadow state before this access touched it).
            let first_touch = self.oracle.is_first_touch(i);
            let in_shadow = self.in_shadow[i];

            let ctx = AccessContext::with_oracle(idx, access.pc, line, set, access.kind, next_use);
            let outcome = cache.access(&ctx);

            let miss_type = if outcome.hit {
                None
            } else if first_touch {
                compulsory_misses += 1;
                Some(MissType::Compulsory)
            } else if in_shadow {
                conflict_misses += 1;
                Some(MissType::Conflict)
            } else {
                capacity_misses += 1;
                Some(MissType::Capacity)
            };

            // Eviction bookkeeping against the oracle.
            let mut evicted_address = None;
            let mut evicted_reuse_distance = None;
            let mut evicted_id = NIL;
            if let Some(evicted) = &outcome.evicted {
                let way = outcome.way.expect("an eviction implies a fill way");
                evicted_id = way_line_id[set.index() * ways + way];
                if EMIT {
                    evicted_address = Some(evicted.line.base_address(line_bits));
                }
                let ev_next = resident_next_use[evicted_id as usize];
                resident_next_use[evicted_id as usize] = NEVER;
                if ev_next != NEVER {
                    let dist = ev_next - idx;
                    evicted_reuse_distance = Some(dist);
                    // "Wrong" eviction: the victim was needed sooner than
                    // the line we inserted.
                    if ev_next < next_use {
                        wrong_evictions += 1;
                    }
                }
            }
            if !outcome.bypassed {
                if let Some(way) = outcome.way {
                    way_line_id[set.index() * ways + way] = lid as u32;
                }
                resident_next_use[lid] = next_use;
            }

            if EMIT {
                records.push(EvictionRecord {
                    index: idx,
                    pc: access.pc,
                    address: access.address,
                    kind: access.kind,
                    set,
                    is_miss: !outcome.hit,
                    miss_type,
                    evicted_address,
                    accessed_reuse_distance: self.oracle.forward_reuse_distance(i),
                    evicted_reuse_distance,
                    recency: self.oracle.recency(i),
                    resident_lines,
                    access_history,
                    eviction_scores,
                    bypassed: outcome.bypassed,
                });
                if hist_cap > 0 {
                    hist_buf[hist_pos] = (access.pc, access.address);
                    hist_pos = (hist_pos + 1) % hist_cap;
                    if hist_len < hist_cap {
                        hist_len += 1;
                    }
                }
            } else {
                // Streaming `prefetch_usefulness` over the records this mode
                // never materialises: the eviction clears its pending line,
                // then the access either fills (prefetch miss), consumes
                // (demand hit on pending) or clears (other demand) its line.
                if evicted_id != NIL {
                    pending[evicted_id as usize] = false;
                }
                if access.kind == AccessKind::Prefetch {
                    if !outcome.hit && !outcome.bypassed {
                        prefetch_fills += 1;
                        pending[lid] = true;
                    }
                } else if outcome.hit && pending[lid] {
                    useful_prefetches += 1;
                    pending[lid] = false;
                } else {
                    pending[lid] = false;
                }
            }

            let _ = miss_type;
        }

        CoreOut {
            records,
            stats: *cache.stats(),
            wrong_evictions,
            capacity_misses,
            conflict_misses,
            compulsory_misses,
            prefetch_fills,
            useful_prefetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::RecencyPolicy;

    fn stream(addrs: &[u64]) -> Vec<MemoryAccess> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                MemoryAccess::load(Pc::new(0x400000 + i as u64), Address::new(a), i as u64)
            })
            .collect()
    }

    #[test]
    fn records_match_stream_length() {
        let s = stream(&[0x0, 0x40, 0x0, 0x80]);
        let replay = LlcReplay::new(CacheConfig::small_llc(), &s);
        let report = replay.run(RecencyPolicy::lru());
        assert_eq!(report.records.len(), 4);
        assert_eq!(report.policy, "lru");
    }

    #[test]
    fn first_touches_are_compulsory() {
        let s = stream(&[0x0, 0x40, 0x0]);
        let replay = LlcReplay::new(CacheConfig::small_llc(), &s);
        let report = replay.run(RecencyPolicy::lru());
        assert_eq!(report.records[0].miss_type, Some(MissType::Compulsory));
        assert_eq!(report.records[1].miss_type, Some(MissType::Compulsory));
        assert_eq!(report.records[2].miss_type, None); // hit
        assert_eq!(report.compulsory_misses, 2);
    }

    #[test]
    fn conflict_vs_capacity_classification() {
        // Direct-mapped single-set cache (1 set x 1 way): two alternating
        // lines conflict; the FA shadow of capacity 1 also evicts, so the
        // taxonomy depends on shadow residency.
        let cfg = CacheConfig::new("tiny", 0, 1, 6);
        let s = stream(&[0x0, 0x40, 0x0, 0x40]);
        let replay = LlcReplay::new(cfg, &s);
        let report = replay.run(RecencyPolicy::lru());
        // With equal capacities every non-compulsory miss is capacity.
        assert_eq!(report.conflict_misses, 0);
        assert_eq!(report.capacity_misses, 2);

        // Two-set direct-mapped cache where both lines land in set 0 while a
        // FA cache of capacity 2 would hold both: conflict misses.
        let cfg = CacheConfig::new("dm2", 1, 1, 6);
        let s = stream(&[0x000, 0x080, 0x000, 0x080]); // lines 0 and 2, both set 0
        let replay = LlcReplay::new(cfg, &s);
        let report = replay.run(RecencyPolicy::lru());
        assert_eq!(report.conflict_misses, 2);
        assert_eq!(report.capacity_misses, 0);
    }

    #[test]
    fn taxonomy_hand_built_trace_has_known_classification() {
        // Capacity side: 2 sets x 1 way, 64 B lines => capacity 2 lines; the
        // FA LRU shadow also holds 2 lines and is touched on hits too.
        // Lines: A=0x000 (set 0), B=0x040 (set 1), C=0x080 (set 0).
        //
        //   idx access  sa-cache          fa-shadow (cap 2)   expected
        //   0   A       miss (cold)       {A}                 Compulsory
        //   1   B       miss (cold)       {A,B}               Compulsory
        //   2   C       miss, evicts A    {B,C} (A out)       Compulsory
        //   3   A       miss (set 0 = C)  {C,A} (B out)       Capacity
        //   4   B       hit  (set 1)      {A,B} (C out)       -
        //   5   C       miss (set 0 = A)  {B,C} (A out)       Capacity
        let cfg = CacheConfig::new("t", 1, 1, 6);
        let s = stream(&[0x000, 0x040, 0x080, 0x000, 0x040, 0x080]);
        let report = LlcReplay::new(cfg, &s).run(RecencyPolicy::lru());
        let expected = [
            Some(MissType::Compulsory),
            Some(MissType::Compulsory),
            Some(MissType::Compulsory),
            Some(MissType::Capacity),
            None,
            Some(MissType::Capacity),
        ];
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(report.records[i].miss_type, *want, "access {i}");
        }
        assert_eq!(report.compulsory_misses, 3);
        assert_eq!(report.capacity_misses, 2);
        assert_eq!(report.conflict_misses, 0);
        assert_eq!(report.stats.hits, 1);

        // Conflict side: 2 sets x 2 ways => capacity 4 lines, but the three
        // even lines A=0x000, B=0x080, C=0x100 all map to set 0 and thrash
        // its 2 ways, while the FA shadow (cap 4) retains all three: every
        // post-cold miss is a set-mapping artefact.
        let cfg = CacheConfig::new("t", 1, 2, 6);
        let s = stream(&[0x000, 0x080, 0x100, 0x000, 0x080, 0x100]);
        let report = LlcReplay::new(cfg, &s).run(RecencyPolicy::lru());
        for i in 0..3 {
            assert_eq!(report.records[i].miss_type, Some(MissType::Compulsory), "access {i}");
        }
        for i in 3..6 {
            assert_eq!(report.records[i].miss_type, Some(MissType::Conflict), "access {i}");
        }
        assert_eq!(report.compulsory_misses, 3);
        assert_eq!(report.conflict_misses, 3);
        assert_eq!(report.capacity_misses, 0);
        assert_eq!(report.stats.hits, 0);
    }

    #[test]
    fn taxonomy_counters_equal_record_census() {
        // Counters must agree with a recount over the per-access records on
        // a mixed stream (reuse + streaming + conflicts).
        let addrs: Vec<u64> =
            (0..200u64).map(|i| if i % 3 == 0 { (i % 8) * 64 } else { i * 128 }).collect();
        let report = LlcReplay::new(CacheConfig::new("t", 2, 2, 6), &stream(&addrs))
            .run(RecencyPolicy::lru());
        let census =
            |t: MissType| report.records.iter().filter(|r| r.miss_type == Some(t)).count() as u64;
        assert_eq!(report.compulsory_misses, census(MissType::Compulsory));
        assert_eq!(report.capacity_misses, census(MissType::Capacity));
        assert_eq!(report.conflict_misses, census(MissType::Conflict));
        assert_eq!(
            report.stats.misses,
            report.compulsory_misses + report.capacity_misses + report.conflict_misses
        );
    }

    #[test]
    fn eviction_annotation_reports_victim_and_distances() {
        let cfg = CacheConfig::new("tiny", 0, 1, 6);
        // A, B (evicts A; A needed again at index 2 => evicted_reuse 2-1=1,
        // wrong because B is never reused), A.
        let s = stream(&[0x0, 0x40, 0x0]);
        let replay = LlcReplay::new(cfg, &s);
        let report = replay.run(RecencyPolicy::lru());
        let rec = &report.records[1];
        assert_eq!(rec.evicted_address, Some(Address::new(0x0)));
        assert_eq!(rec.evicted_reuse_distance, Some(1));
        assert_eq!(report.wrong_evictions, 1);
    }

    #[test]
    fn history_and_snapshot_are_pre_access() {
        let s = stream(&[0x0, 0x40, 0x80]);
        let replay = LlcReplay::new(CacheConfig::small_llc(), &s).with_history_len(2);
        let report = replay.run(RecencyPolicy::lru());
        assert!(report.records[0].access_history.is_empty());
        assert_eq!(report.records[2].access_history.len(), 2);
        // Most recent first.
        assert_eq!(report.records[2].access_history[0].1, Address::new(0x40));
        assert!(report.records[0].resident_lines.is_empty());
    }

    #[test]
    fn correlation_is_bounded() {
        let s = stream(&(0..256u64).map(|i| (i % 32) * 64).collect::<Vec<_>>());
        let replay = LlcReplay::new(CacheConfig::new("t", 1, 2, 6), &s);
        let report = replay.run(RecencyPolicy::lru());
        let c = report.recency_miss_correlation();
        assert!((-1.0..=1.0).contains(&c));
    }

    /// The record-free path must reproduce every counter of the full path,
    /// including the streaming prefetch-usefulness walk, on a mixed
    /// demand/prefetch stream with evictions and bypass-free churn.
    #[test]
    fn summary_matches_full_run() {
        let mut s = Vec::new();
        for i in 0..400u64 {
            let pc = Pc::new(0x400000 + (i % 5));
            // Prefetch a fresh line, consume it with a demand load on the
            // next access (useful prefetch), and otherwise churn a working
            // set (16 lines) larger than capacity (8 lines) so evictions
            // clear pending prefetches and exercise the miss taxonomy.
            s.push(match i % 5 {
                0 => MemoryAccess::prefetch(pc, Address::new((1000 + i) * 64), i),
                1 => MemoryAccess::load(pc, Address::new((1000 + i - 1) * 64), i),
                _ => MemoryAccess::load(pc, Address::new((i % 16) * 64), i),
            });
        }
        let replay = LlcReplay::new(CacheConfig::new("t", 2, 2, 6), &s);
        let full = replay.run(RecencyPolicy::lru());
        let summary = replay.run_summary(RecencyPolicy::lru());
        assert_eq!(summary.policy, full.policy);
        assert_eq!(summary.stats, full.stats);
        assert_eq!(summary.wrong_evictions, full.wrong_evictions);
        assert_eq!(summary.capacity_misses, full.capacity_misses);
        assert_eq!(summary.conflict_misses, full.conflict_misses);
        assert_eq!(summary.compulsory_misses, full.compulsory_misses);
        let (fills, useful) = crate::sweep::prefetch_usefulness(&full.records, 6);
        assert!(fills > 0 && useful > 0, "stream must exercise the walk");
        assert_eq!(summary.prefetch_fills, fills);
        assert_eq!(summary.useful_prefetches, useful);
    }
}
