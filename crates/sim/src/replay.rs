//! LLC replay with full eviction annotation — the producer of the paper's
//! per-access trace schema (§4.3).
//!
//! [`LlcReplay`] replays a captured LLC access stream against one
//! replacement policy and emits an [`EvictionRecord`] per access carrying:
//! hit/miss outcome, miss taxonomy (compulsory/capacity/conflict, via a
//! fully-associative LRU shadow cache), the evicted line and its reuse
//! distance, the accessed line's reuse distance and recency, a snapshot of
//! the resident `(address, pc)` pairs, the recent access history, and the
//! policy's per-line eviction scores.

use std::collections::{BTreeMap, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::access::MemoryAccess;
use crate::addr::{Address, LineAddr, Pc, SetId};
use crate::cache::SetAssociativeCache;
use crate::config::CacheConfig;
use crate::replacement::{AccessContext, ReplacementPolicy};
use crate::reuse::{ReuseOracle, NEVER};
use crate::stats::CacheStats;

/// Miss taxonomy, as the paper's `miss_type` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MissType {
    /// First touch of the line anywhere in the stream.
    Compulsory,
    /// Would also miss in a fully-associative cache of the same capacity.
    Capacity,
    /// Hits in the fully-associative shadow but missed here: a set-mapping
    /// artefact.
    Conflict,
}

impl MissType {
    /// The label used in trace text ("Capacity", "Conflict", "Compulsory").
    pub const fn label(self) -> &'static str {
        match self {
            MissType::Compulsory => "Compulsory",
            MissType::Capacity => "Capacity",
            MissType::Conflict => "Conflict",
        }
    }
}

/// One fully-annotated LLC access — the row type of the external database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvictionRecord {
    /// Position within the LLC stream.
    pub index: u64,
    /// Program counter issuing the access.
    pub pc: Pc,
    /// Full byte address accessed.
    pub address: Address,
    /// Access kind (load/store/fetch/prefetch) — the "access types"
    /// dimension the paper's gem5 extension adds.
    pub kind: crate::access::AccessKind,
    /// The cache set the access mapped to.
    pub set: SetId,
    /// Whether the access missed.
    pub is_miss: bool,
    /// Miss taxonomy (misses only).
    pub miss_type: Option<MissType>,
    /// Line evicted by this access, if any (reconstructed byte address).
    pub evicted_address: Option<Address>,
    /// Forward reuse distance of the accessed line (accesses until needed
    /// again; `None` = never needed again).
    pub accessed_reuse_distance: Option<u64>,
    /// Forward reuse distance of the evicted line at eviction time.
    pub evicted_reuse_distance: Option<u64>,
    /// Accesses since the accessed line was last touched (`None` = first
    /// touch).
    pub recency: Option<u64>,
    /// Snapshot of `(line base address, inserting PC)` for the accessed set,
    /// taken before the access.
    pub resident_lines: Vec<(Address, Pc)>,
    /// The last few `(pc, address)` accesses preceding this one.
    pub access_history: Vec<(Pc, Address)>,
    /// The policy's per-line eviction scores `(line base address, score)`
    /// for the accessed set, taken before the access.
    pub eviction_scores: Vec<(Address, u64)>,
    /// Whether the policy bypassed the fill.
    pub bypassed: bool,
}

impl EvictionRecord {
    /// Qualitative recency label, matching the paper's textual
    /// `accessed_address_recency` column ("first access", "very recent",
    /// "recent", "distant", "very distant").
    pub fn recency_label(&self) -> &'static str {
        match self.recency {
            None => "first access",
            Some(d) if d <= 64 => "very recent",
            Some(d) if d <= 1024 => "recent",
            Some(d) if d <= 16384 => "distant",
            Some(_) => "very distant",
        }
    }
}

/// Aggregate results of one policy replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Stable policy name (`"lru"`, `"belady"`, ...).
    pub policy: String,
    /// Per-access records.
    pub records: Vec<EvictionRecord>,
    /// Aggregate counters.
    pub stats: CacheStats,
    /// Evictions where the evicted line was needed *sooner* than the
    /// inserted line (the paper's "wrong evictions").
    pub wrong_evictions: u64,
    /// Capacity-miss count.
    pub capacity_misses: u64,
    /// Conflict-miss count.
    pub conflict_misses: u64,
    /// Compulsory-miss count.
    pub compulsory_misses: u64,
}

impl ReplayReport {
    /// Miss rate over the replayed stream.
    pub fn miss_rate(&self) -> f64 {
        self.stats.miss_rate()
    }

    /// Hit rate over the replayed stream.
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }

    /// Fraction of evictions that were "wrong" in the paper's sense.
    pub fn wrong_eviction_rate(&self) -> f64 {
        if self.stats.evictions == 0 {
            0.0
        } else {
            self.wrong_evictions as f64 / self.stats.evictions as f64
        }
    }

    /// Pearson correlation between accessed-address recency and miss
    /// outcome, as reported in the paper's metadata string. Records without
    /// a recency value (first touches) are excluded.
    pub fn recency_miss_correlation(&self) -> f64 {
        let pairs: Vec<(f64, f64)> = self
            .records
            .iter()
            .filter_map(|r| r.recency.map(|rec| (rec as f64, r.is_miss as u8 as f64)))
            .collect();
        pearson(&pairs)
    }
}

fn pearson(pairs: &[(f64, f64)]) -> f64 {
    let n = pairs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let (sx, sy): (f64, f64) = pairs.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
    let (mx, my) = (sx / n, sy / n);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for &(x, y) in pairs {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// A fully-associative LRU shadow cache used to split capacity from conflict
/// misses. O(log n) per access.
#[derive(Debug, Default)]
struct ShadowFaLru {
    capacity: usize,
    by_line: HashMap<LineAddr, u64>,
    by_time: BTreeMap<u64, LineAddr>,
}

impl ShadowFaLru {
    fn new(capacity: usize) -> Self {
        ShadowFaLru { capacity, by_line: HashMap::new(), by_time: BTreeMap::new() }
    }

    /// Touches `line` at logical time `now`; returns whether it was present.
    fn touch(&mut self, line: LineAddr, now: u64) -> bool {
        let present = if let Some(prev) = self.by_line.insert(line, now) {
            self.by_time.remove(&prev);
            true
        } else {
            false
        };
        self.by_time.insert(now, line);
        if self.by_line.len() > self.capacity {
            if let Some((_, victim)) = self.by_time.pop_first() {
                self.by_line.remove(&victim);
            }
        }
        present
    }
}

/// Replays an LLC access stream against a replacement policy, producing the
/// fully-annotated trace.
///
/// # Example
///
/// ```rust
/// use cachemind_sim::prelude::*;
///
/// let stream = vec![
///     MemoryAccess::load(Pc::new(0x401000), Address::new(0x0000), 0),
///     MemoryAccess::load(Pc::new(0x401000), Address::new(0x0000), 1),
/// ];
/// let replay = LlcReplay::new(CacheConfig::small_llc(), &stream);
/// let report = replay.run(RecencyPolicy::lru());
/// assert_eq!(report.records.len(), 2);
/// assert!(report.records[1].is_miss == false);
/// ```
#[derive(Debug)]
pub struct LlcReplay {
    config: CacheConfig,
    stream: Vec<MemoryAccess>,
    oracle: ReuseOracle,
    history_len: usize,
}

impl LlcReplay {
    /// Prepares a replay of `stream` under the given LLC geometry, building
    /// the reuse oracle internally.
    pub fn new(config: CacheConfig, stream: &[MemoryAccess]) -> Self {
        let oracle = ReuseOracle::from_accesses(stream, config.line_size_log2);
        LlcReplay { config, stream: stream.to_vec(), oracle, history_len: 8 }
    }

    /// Number of `(pc, address)` entries kept in each record's access
    /// history (default 8).
    pub fn with_history_len(mut self, len: usize) -> Self {
        self.history_len = len;
        self
    }

    /// The reuse oracle for the prepared stream.
    pub fn oracle(&self) -> &ReuseOracle {
        &self.oracle
    }

    /// The prepared LLC stream.
    pub fn stream(&self) -> &[MemoryAccess] {
        &self.stream
    }

    /// Runs the replay with `policy`, consuming nothing so multiple policies
    /// can replay the identical stream.
    pub fn run<P: ReplacementPolicy>(&self, policy: P) -> ReplayReport {
        let policy_name = policy.name().to_owned();
        let mut cache = SetAssociativeCache::new(self.config.clone(), policy);
        let mut shadow = ShadowFaLru::new(self.config.capacity_lines());
        let mut history: VecDeque<(Pc, Address)> = VecDeque::with_capacity(self.history_len + 1);
        // Next-use index of every currently-resident line, refreshed on access.
        let mut resident_next_use: HashMap<LineAddr, u64> = HashMap::new();

        let mut records = Vec::with_capacity(self.stream.len());
        let mut wrong_evictions = 0;
        let mut capacity_misses = 0;
        let mut conflict_misses = 0;
        let mut compulsory_misses = 0;
        let line_bits = self.config.line_size_log2;

        for (i, access) in self.stream.iter().enumerate() {
            let idx = i as u64;
            let line = self.oracle.line(i);
            let set = cache.set_of_line(line);
            let next_use = self.oracle.next_use(i);

            // Pre-access snapshots.
            let set_view = cache.set_lines(set);
            let resident_lines: Vec<(Address, Pc)> = set_view
                .iter()
                .flatten()
                .map(|meta| (meta.line.base_address(line_bits), meta.insert_pc))
                .collect();
            let scores = cache.line_scores(set, idx);
            let eviction_scores: Vec<(Address, u64)> = set_view
                .iter()
                .zip(scores)
                .filter_map(|(slot, score)| {
                    slot.as_ref().map(|meta| (meta.line.base_address(line_bits), score))
                })
                .collect();
            let access_history: Vec<(Pc, Address)> = history.iter().rev().copied().collect();

            // Miss classification uses the shadow before it is touched.
            let first_touch = self.oracle.is_first_touch(i);
            let in_shadow = shadow.touch(line, idx);

            let ctx = AccessContext::with_oracle(idx, access.pc, line, set, access.kind, next_use);
            let outcome = cache.access(&ctx);

            let miss_type = if outcome.hit {
                None
            } else if first_touch {
                compulsory_misses += 1;
                Some(MissType::Compulsory)
            } else if in_shadow {
                conflict_misses += 1;
                Some(MissType::Conflict)
            } else {
                capacity_misses += 1;
                Some(MissType::Capacity)
            };

            // Eviction bookkeeping against the oracle.
            let mut evicted_address = None;
            let mut evicted_reuse_distance = None;
            if let Some(evicted) = outcome.evicted {
                evicted_address = Some(evicted.line.base_address(line_bits));
                if let Some(ev_next) = resident_next_use.remove(&evicted.line) {
                    if ev_next != NEVER {
                        let dist = ev_next - idx;
                        evicted_reuse_distance = Some(dist);
                        // "Wrong" eviction: the victim was needed sooner than
                        // the line we inserted.
                        if ev_next < next_use {
                            wrong_evictions += 1;
                        }
                    }
                }
            }
            if !outcome.bypassed {
                resident_next_use.insert(line, next_use);
            }

            records.push(EvictionRecord {
                index: idx,
                pc: access.pc,
                address: access.address,
                kind: access.kind,
                set,
                is_miss: !outcome.hit,
                miss_type,
                evicted_address,
                accessed_reuse_distance: self.oracle.forward_reuse_distance(i),
                evicted_reuse_distance,
                recency: self.oracle.recency(i),
                resident_lines,
                access_history,
                eviction_scores,
                bypassed: outcome.bypassed,
            });

            history.push_back((access.pc, access.address));
            if history.len() > self.history_len {
                history.pop_front();
            }
        }

        ReplayReport {
            policy: policy_name,
            records,
            stats: *cache.stats(),
            wrong_evictions,
            capacity_misses,
            conflict_misses,
            compulsory_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::RecencyPolicy;

    fn stream(addrs: &[u64]) -> Vec<MemoryAccess> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                MemoryAccess::load(Pc::new(0x400000 + i as u64), Address::new(a), i as u64)
            })
            .collect()
    }

    #[test]
    fn records_match_stream_length() {
        let s = stream(&[0x0, 0x40, 0x0, 0x80]);
        let replay = LlcReplay::new(CacheConfig::small_llc(), &s);
        let report = replay.run(RecencyPolicy::lru());
        assert_eq!(report.records.len(), 4);
        assert_eq!(report.policy, "lru");
    }

    #[test]
    fn first_touches_are_compulsory() {
        let s = stream(&[0x0, 0x40, 0x0]);
        let replay = LlcReplay::new(CacheConfig::small_llc(), &s);
        let report = replay.run(RecencyPolicy::lru());
        assert_eq!(report.records[0].miss_type, Some(MissType::Compulsory));
        assert_eq!(report.records[1].miss_type, Some(MissType::Compulsory));
        assert_eq!(report.records[2].miss_type, None); // hit
        assert_eq!(report.compulsory_misses, 2);
    }

    #[test]
    fn conflict_vs_capacity_classification() {
        // Direct-mapped single-set cache (1 set x 1 way): two alternating
        // lines conflict; the FA shadow of capacity 1 also evicts, so the
        // taxonomy depends on shadow residency.
        let cfg = CacheConfig::new("tiny", 0, 1, 6);
        let s = stream(&[0x0, 0x40, 0x0, 0x40]);
        let replay = LlcReplay::new(cfg, &s);
        let report = replay.run(RecencyPolicy::lru());
        // With equal capacities every non-compulsory miss is capacity.
        assert_eq!(report.conflict_misses, 0);
        assert_eq!(report.capacity_misses, 2);

        // Two-set direct-mapped cache where both lines land in set 0 while a
        // FA cache of capacity 2 would hold both: conflict misses.
        let cfg = CacheConfig::new("dm2", 1, 1, 6);
        let s = stream(&[0x000, 0x080, 0x000, 0x080]); // lines 0 and 2, both set 0
        let replay = LlcReplay::new(cfg, &s);
        let report = replay.run(RecencyPolicy::lru());
        assert_eq!(report.conflict_misses, 2);
        assert_eq!(report.capacity_misses, 0);
    }

    #[test]
    fn taxonomy_hand_built_trace_has_known_classification() {
        // Capacity side: 2 sets x 1 way, 64 B lines => capacity 2 lines; the
        // FA LRU shadow also holds 2 lines and is touched on hits too.
        // Lines: A=0x000 (set 0), B=0x040 (set 1), C=0x080 (set 0).
        //
        //   idx access  sa-cache          fa-shadow (cap 2)   expected
        //   0   A       miss (cold)       {A}                 Compulsory
        //   1   B       miss (cold)       {A,B}               Compulsory
        //   2   C       miss, evicts A    {B,C} (A out)       Compulsory
        //   3   A       miss (set 0 = C)  {C,A} (B out)       Capacity
        //   4   B       hit  (set 1)      {A,B} (C out)       -
        //   5   C       miss (set 0 = A)  {B,C} (A out)       Capacity
        let cfg = CacheConfig::new("t", 1, 1, 6);
        let s = stream(&[0x000, 0x040, 0x080, 0x000, 0x040, 0x080]);
        let report = LlcReplay::new(cfg, &s).run(RecencyPolicy::lru());
        let expected = [
            Some(MissType::Compulsory),
            Some(MissType::Compulsory),
            Some(MissType::Compulsory),
            Some(MissType::Capacity),
            None,
            Some(MissType::Capacity),
        ];
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(report.records[i].miss_type, *want, "access {i}");
        }
        assert_eq!(report.compulsory_misses, 3);
        assert_eq!(report.capacity_misses, 2);
        assert_eq!(report.conflict_misses, 0);
        assert_eq!(report.stats.hits, 1);

        // Conflict side: 2 sets x 2 ways => capacity 4 lines, but the three
        // even lines A=0x000, B=0x080, C=0x100 all map to set 0 and thrash
        // its 2 ways, while the FA shadow (cap 4) retains all three: every
        // post-cold miss is a set-mapping artefact.
        let cfg = CacheConfig::new("t", 1, 2, 6);
        let s = stream(&[0x000, 0x080, 0x100, 0x000, 0x080, 0x100]);
        let report = LlcReplay::new(cfg, &s).run(RecencyPolicy::lru());
        for i in 0..3 {
            assert_eq!(report.records[i].miss_type, Some(MissType::Compulsory), "access {i}");
        }
        for i in 3..6 {
            assert_eq!(report.records[i].miss_type, Some(MissType::Conflict), "access {i}");
        }
        assert_eq!(report.compulsory_misses, 3);
        assert_eq!(report.conflict_misses, 3);
        assert_eq!(report.capacity_misses, 0);
        assert_eq!(report.stats.hits, 0);
    }

    #[test]
    fn taxonomy_counters_equal_record_census() {
        // Counters must agree with a recount over the per-access records on
        // a mixed stream (reuse + streaming + conflicts).
        let addrs: Vec<u64> =
            (0..200u64).map(|i| if i % 3 == 0 { (i % 8) * 64 } else { i * 128 }).collect();
        let report = LlcReplay::new(CacheConfig::new("t", 2, 2, 6), &stream(&addrs))
            .run(RecencyPolicy::lru());
        let census =
            |t: MissType| report.records.iter().filter(|r| r.miss_type == Some(t)).count() as u64;
        assert_eq!(report.compulsory_misses, census(MissType::Compulsory));
        assert_eq!(report.capacity_misses, census(MissType::Capacity));
        assert_eq!(report.conflict_misses, census(MissType::Conflict));
        assert_eq!(
            report.stats.misses,
            report.compulsory_misses + report.capacity_misses + report.conflict_misses
        );
    }

    #[test]
    fn eviction_annotation_reports_victim_and_distances() {
        let cfg = CacheConfig::new("tiny", 0, 1, 6);
        // A, B (evicts A; A needed again at index 2 => evicted_reuse 2-1=1,
        // wrong because B is never reused), A.
        let s = stream(&[0x0, 0x40, 0x0]);
        let replay = LlcReplay::new(cfg, &s);
        let report = replay.run(RecencyPolicy::lru());
        let rec = &report.records[1];
        assert_eq!(rec.evicted_address, Some(Address::new(0x0)));
        assert_eq!(rec.evicted_reuse_distance, Some(1));
        assert_eq!(report.wrong_evictions, 1);
    }

    #[test]
    fn history_and_snapshot_are_pre_access() {
        let s = stream(&[0x0, 0x40, 0x80]);
        let replay = LlcReplay::new(CacheConfig::small_llc(), &s).with_history_len(2);
        let report = replay.run(RecencyPolicy::lru());
        assert!(report.records[0].access_history.is_empty());
        assert_eq!(report.records[2].access_history.len(), 2);
        // Most recent first.
        assert_eq!(report.records[2].access_history[0].1, Address::new(0x40));
        assert!(report.records[0].resident_lines.is_empty());
    }

    #[test]
    fn correlation_is_bounded() {
        let s = stream(&(0..256u64).map(|i| (i % 32) * 64).collect::<Vec<_>>());
        let replay = LlcReplay::new(CacheConfig::new("t", 1, 2, 6), &s);
        let report = replay.run(RecencyPolicy::lru());
        let c = report.recency_miss_correlation();
        assert!((-1.0..=1.0).contains(&c));
    }
}
