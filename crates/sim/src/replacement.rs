//! The replacement-policy plug-in interface.
//!
//! A policy sees three events: hits ([`ReplacementPolicy::on_hit`]), victim
//! selection on a miss ([`ReplacementPolicy::choose_victim`]) and fills
//! ([`ReplacementPolicy::on_fill`]). Offline policies such as Belady
//! additionally read the *future* through [`AccessContext::next_use`], which
//! the replay driver populates from a [`crate::reuse::ReuseOracle`]. Online
//! (hardware-realisable) policies must ignore that field.
//!
//! Policies observe the set through the borrowed [`SetView`] adapter over
//! the cache's structure-of-arrays storage (see [`crate::cache`]).

use serde::{Deserialize, Serialize};

use crate::access::{AccessKind, MemoryAccess};
use crate::addr::{LineAddr, Pc, SetId};
use crate::cache::SetView;

/// Everything a policy may inspect about the access being processed.
#[derive(Debug, Clone, Copy)]
pub struct AccessContext {
    /// Index of this access within the (LLC) access stream.
    pub index: u64,
    /// Program counter issuing the access.
    pub pc: Pc,
    /// Line address being accessed.
    pub line: LineAddr,
    /// Set the line maps to.
    pub set: SetId,
    /// Access kind.
    pub kind: AccessKind,
    /// The stream index at which this line is next accessed, if an oracle is
    /// driving the replay (`None` for pure online simulation, `Some(u64::MAX)`
    /// when the line is never referenced again).
    pub next_use: Option<u64>,
}

impl AccessContext {
    /// Builds a context for a demand access without oracle information.
    pub fn demand(index: u64, access: &MemoryAccess, set: SetId) -> Self {
        AccessContext {
            index,
            pc: access.pc,
            line: access.address.line(6),
            set,
            kind: access.kind,
            next_use: None,
        }
    }

    /// Builds a context with explicit fields (used by replay drivers that
    /// already computed line/set under the target geometry).
    pub fn with_oracle(
        index: u64,
        pc: Pc,
        line: LineAddr,
        set: SetId,
        kind: AccessKind,
        next_use: u64,
    ) -> Self {
        AccessContext { index, pc, line, set, kind, next_use: Some(next_use) }
    }
}

/// A victim-selection decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Evict the line in the given way and fill the incoming line there.
    Evict(usize),
    /// Do not cache the incoming line at all.
    Bypass,
}

/// A cache replacement policy.
///
/// Implementations keep their own per-set metadata, keyed by
/// `(SetId, way)`. The cache guarantees that `choose_victim` is only called
/// when every way of the set is valid; when an invalid way exists the cache
/// fills it directly and only `on_fill` runs.
pub trait ReplacementPolicy {
    /// Short, stable policy name (used as the database key suffix, e.g.
    /// `"lru"` in `lbm_evictions_lru`).
    fn name(&self) -> &'static str;

    /// Notifies the policy of a hit in `way` of `ctx.set`.
    fn on_hit(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext);

    /// Chooses a victim among the (fully valid) `lines` of `ctx.set`.
    fn choose_victim(&mut self, lines: SetView<'_>, ctx: &AccessContext) -> Decision;

    /// Notifies the policy that the incoming line was filled into `way`.
    fn on_fill(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext);

    /// Allocation-free score emission: clears `out` and appends the policy's
    /// current eviction score for every way of `set`; higher means "more
    /// evictable". Mirrors the paper's `cache_line_eviction_scores` column.
    /// The default derives scores from recency (age since last touch). This
    /// is the method policies override; [`ReplacementPolicy::line_scores`]
    /// is a convenience wrapper that allocates.
    fn line_scores_into(&self, set: SetId, lines: SetView<'_>, now: u64, out: &mut Vec<u64>) {
        let _ = set;
        out.clear();
        out.extend((0..lines.len()).map(|way| {
            if lines.is_valid(way) {
                now.saturating_sub(lines.last_touch(way))
            } else {
                u64::MAX
            }
        }));
    }

    /// The policy's current eviction score for every way of `set`, as a
    /// fresh `Vec`. Prefer [`ReplacementPolicy::line_scores_into`] in hot
    /// loops.
    fn line_scores(&self, set: SetId, lines: SetView<'_>, now: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(lines.len());
        self.line_scores_into(set, lines, now, &mut out);
        out
    }
}

impl<P: ReplacementPolicy + ?Sized> ReplacementPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn on_hit(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        (**self).on_hit(way, lines, ctx);
    }

    fn choose_victim(&mut self, lines: SetView<'_>, ctx: &AccessContext) -> Decision {
        (**self).choose_victim(lines, ctx)
    }

    fn on_fill(&mut self, way: usize, lines: SetView<'_>, ctx: &AccessContext) {
        (**self).on_fill(way, lines, ctx);
    }

    fn line_scores_into(&self, set: SetId, lines: SetView<'_>, now: u64, out: &mut Vec<u64>) {
        (**self).line_scores_into(set, lines, now, out);
    }

    fn line_scores(&self, set: SetId, lines: SetView<'_>, now: u64) -> Vec<u64> {
        (**self).line_scores(set, lines, now)
    }
}

/// Recency-ordered policies: LRU, MRU and FIFO in one implementation.
///
/// This lives in `cachemind-sim` (rather than `cachemind-policies`) because
/// the hierarchy's L1/L2 levels always use LRU, matching Table 2.
///
/// ```rust
/// use cachemind_sim::replacement::{RecencyPolicy, ReplacementPolicy};
/// assert_eq!(RecencyPolicy::lru().name(), "lru");
/// ```
#[derive(Debug, Clone)]
pub struct RecencyPolicy {
    flavor: RecencyFlavor,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecencyFlavor {
    Lru,
    Mru,
    Fifo,
}

impl RecencyPolicy {
    /// Least-recently-used.
    pub fn lru() -> Self {
        RecencyPolicy { flavor: RecencyFlavor::Lru }
    }

    /// Most-recently-used (pathological on LRU-friendly traces; useful as an
    /// adversarial baseline).
    pub fn mru() -> Self {
        RecencyPolicy { flavor: RecencyFlavor::Mru }
    }

    /// First-in-first-out.
    pub fn fifo() -> Self {
        RecencyPolicy { flavor: RecencyFlavor::Fifo }
    }
}

impl ReplacementPolicy for RecencyPolicy {
    fn name(&self) -> &'static str {
        match self.flavor {
            RecencyFlavor::Lru => "lru",
            RecencyFlavor::Mru => "mru",
            RecencyFlavor::Fifo => "fifo",
        }
    }

    fn on_hit(&mut self, _way: usize, _lines: SetView<'_>, _ctx: &AccessContext) {
        // Recency state is carried by the cache's last_touch column,
        // maintained by the cache itself; nothing extra to do.
    }

    fn choose_victim(&mut self, lines: SetView<'_>, _ctx: &AccessContext) -> Decision {
        let key = |way: usize| match self.flavor {
            RecencyFlavor::Lru | RecencyFlavor::Mru => lines.last_touch(way),
            RecencyFlavor::Fifo => lines.inserted_at(way),
        };
        let pick = (0..lines.len()).filter(|&way| lines.is_valid(way)).map(|way| (way, key(way)));
        let way = match self.flavor {
            RecencyFlavor::Mru => pick.max_by_key(|&(_, k)| k).map(|(w, _)| w),
            _ => pick.min_by_key(|&(_, k)| k).map(|(w, _)| w),
        };
        Decision::Evict(way.expect("choose_victim called on a set with no valid lines"))
    }

    fn on_fill(&mut self, _way: usize, _lines: SetView<'_>, _ctx: &AccessContext) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Address;
    use crate::cache::SetAssociativeCache;
    use crate::config::CacheConfig;

    fn touch(cache: &mut SetAssociativeCache<RecencyPolicy>, addr: u64, idx: u64) -> bool {
        let a = MemoryAccess::load(Pc::new(0x400000), Address::new(addr), idx);
        let set = cache.set_of(a.address);
        cache.access(&AccessContext::demand(idx, &a, set)).hit
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways: A, B, touch A, insert C -> B evicted.
        let cfg = CacheConfig::new("toy", 0, 2, 6);
        let mut cache = SetAssociativeCache::new(cfg, RecencyPolicy::lru());
        assert!(!touch(&mut cache, 0x000, 0)); // A
        assert!(!touch(&mut cache, 0x100, 1)); // B
        assert!(touch(&mut cache, 0x000, 2)); // A hit
        assert!(!touch(&mut cache, 0x200, 3)); // C evicts B
        assert!(touch(&mut cache, 0x000, 4)); // A still resident
        assert!(!touch(&mut cache, 0x100, 5)); // B was evicted
    }

    #[test]
    fn fifo_ignores_hits() {
        let cfg = CacheConfig::new("toy", 0, 2, 6);
        let mut cache = SetAssociativeCache::new(cfg, RecencyPolicy::fifo());
        assert!(!touch(&mut cache, 0x000, 0)); // A (first in)
        assert!(!touch(&mut cache, 0x100, 1)); // B
        assert!(touch(&mut cache, 0x000, 2)); // A hit does not refresh FIFO order
        assert!(!touch(&mut cache, 0x200, 3)); // C evicts A
        assert!(!touch(&mut cache, 0x000, 4)); // A gone
    }

    #[test]
    fn mru_evicts_most_recent() {
        let cfg = CacheConfig::new("toy", 0, 2, 6);
        let mut cache = SetAssociativeCache::new(cfg, RecencyPolicy::mru());
        assert!(!touch(&mut cache, 0x000, 0)); // A
        assert!(!touch(&mut cache, 0x100, 1)); // B (most recent)
        assert!(!touch(&mut cache, 0x200, 2)); // C evicts B
        assert!(touch(&mut cache, 0x000, 3)); // A survived
    }
}
