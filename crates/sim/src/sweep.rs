//! Parallel policy × workload × configuration sweeps.
//!
//! The figure-generation binaries all share the same shape of work: replay
//! every workload stream under every replacement policy for one or more LLC
//! geometries, then tabulate hit rates and the miss taxonomy. Done serially
//! that is `|policies| × |workloads| × |configs|` independent full replays —
//! exactly the embarrassingly-parallel rollout a sweep engine should spread
//! across cores.
//!
//! [`SweepGrid::run`] does so with rayon parallel iterators in two stages:
//!
//! 1. one task per `(workload, config)` pair builds the [`LlcReplay`]
//!    (stream copy + reuse oracle) exactly once, so the oracle is shared by
//!    every policy replaying that pair rather than rebuilt per cell;
//! 2. one task per `(pair, policy)` cell runs the replay and reduces it to a
//!    [`SweepCell`].
//!
//! **Determinism is a contract, not an accident.** Each cell's result
//! depends only on its own inputs, and the engine aggregates by collecting
//! keyed cells and sorting them by `(workload, config, policy)` before any
//! reduction, so the report is byte-identical no matter how many worker
//! threads ran the grid or in what order cells finished. The
//! `sweep_determinism` integration test pins this down by diffing the
//! rendered report across `RAYON_NUM_THREADS` settings.
//!
//! The engine lives in `cachemind-sim` and therefore cannot name concrete
//! policies from `cachemind-policies`; callers supply a policy *factory*
//! (for example `cachemind_policies::by_name`) which the driver binary in
//! `cachemind-bench` wires up.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::access::MemoryAccess;
use crate::config::CacheConfig;
use crate::replacement::ReplacementPolicy;
use crate::replay::LlcReplay;

/// A named access stream to sweep over (typically one workload's LLC
/// stream).
#[derive(Debug, Clone)]
pub struct SweepStream {
    /// Stable workload name used as the aggregation key.
    pub name: String,
    /// The LLC access stream.
    pub accesses: Vec<MemoryAccess>,
}

impl SweepStream {
    /// Bundles a name and a stream.
    pub fn new(name: impl Into<String>, accesses: Vec<MemoryAccess>) -> Self {
        SweepStream { name: name.into(), accesses }
    }
}

/// The full grid specification: every policy replays every stream under
/// every configuration.
#[derive(Debug, Clone, Default)]
pub struct SweepGrid {
    /// Policy names, resolved through the caller's factory.
    pub policies: Vec<String>,
    /// Workload streams.
    pub streams: Vec<SweepStream>,
    /// LLC geometries.
    pub configs: Vec<CacheConfig>,
}

/// One `(workload, config, policy)` cell of the grid, reduced to its
/// aggregate counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Workload (stream) name.
    pub workload: String,
    /// Configuration label (`name@setsxways`, see [`config_label`]).
    pub config: String,
    /// Policy name.
    pub policy: String,
    /// Accesses replayed.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Miss rate over the stream.
    pub miss_rate: f64,
    /// Compulsory misses.
    pub compulsory_misses: u64,
    /// Capacity misses.
    pub capacity_misses: u64,
    /// Conflict misses.
    pub conflict_misses: u64,
    /// Evictions whose victim was needed sooner than the inserted line.
    pub wrong_evictions: u64,
    /// Total evictions.
    pub evictions: u64,
}

/// A completed sweep: cells in canonical `(workload, config, policy)`
/// order plus per-policy roll-ups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Every grid cell, canonically sorted.
    pub cells: Vec<SweepCell>,
    /// Per-policy totals across all workloads and configs, sorted by
    /// policy name.
    pub policy_totals: Vec<PolicyTotal>,
}

/// Aggregate counters for one policy across the whole grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTotal {
    /// Policy name.
    pub policy: String,
    /// Cells aggregated.
    pub cells: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Miss rate over all aggregated accesses.
    pub miss_rate: f64,
    /// Total wrong evictions.
    pub wrong_evictions: u64,
}

/// Canonical label for a configuration: `name@<sets>x<ways>`.
pub fn config_label(config: &CacheConfig) -> String {
    format!("{}@{}x{}", config.name, config.sets(), config.ways)
}

/// Order-preserving parallel map over independent sweep configurations —
/// the primitive behind both [`SweepGrid::run`] stages, exposed so the
/// figure binaries (`figure5_quality`, `figure6_fewshot`,
/// `ablation_sweeps`, ...) can spread their per-backend / per-parameter
/// replays across cores under the same determinism contract: each output
/// cell depends only on its own input, and results come back in input
/// order no matter how many worker threads ran them or in what order they
/// finished.
pub fn sweep_cells<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    items.into_par_iter().map(f).collect()
}

/// Errors surfaced by [`SweepGrid::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The policy factory returned `None` for a requested policy name.
    UnknownPolicy(String),
    /// The grid had no policies, streams, or configs.
    EmptyGrid,
    /// A policy name, stream name, or config label appears more than once;
    /// `(workload, config, policy)` must uniquely key each cell or cells
    /// would be silently duplicated and totals double-counted.
    DuplicateKey(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::UnknownPolicy(name) => write!(f, "unknown policy {name:?}"),
            SweepError::EmptyGrid => write!(f, "sweep grid has no policies, streams or configs"),
            SweepError::DuplicateKey(key) => write!(f, "duplicate grid key {key:?}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl SweepGrid {
    /// Builder-style: adds a policy name.
    pub fn policy(mut self, name: impl Into<String>) -> Self {
        self.policies.push(name.into());
        self
    }

    /// Builder-style: adds a stream.
    pub fn stream(mut self, stream: SweepStream) -> Self {
        self.streams.push(stream);
        self
    }

    /// Builder-style: adds a configuration.
    pub fn config(mut self, config: CacheConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Number of grid cells.
    pub fn cells(&self) -> usize {
        self.policies.len() * self.streams.len() * self.configs.len()
    }

    /// Runs the full grid in parallel.
    ///
    /// `make_policy` is called once per cell, on the worker thread that
    /// replays the cell, so policies need not be `Send`/`Sync` themselves —
    /// only the factory must be shareable.
    pub fn run<F>(&self, make_policy: F) -> Result<SweepReport, SweepError>
    where
        F: Fn(&str) -> Option<Box<dyn ReplacementPolicy>> + Sync,
    {
        if self.cells() == 0 {
            return Err(SweepError::EmptyGrid);
        }
        // Fail fast (and deterministically) on unresolvable policy names
        // instead of panicking from a worker mid-sweep.
        for name in &self.policies {
            if make_policy(name).is_none() {
                return Err(SweepError::UnknownPolicy(name.clone()));
            }
        }
        // Every grid axis must be duplicate-free, or cells lose their
        // unique (workload, config, policy) key and totals double-count.
        let mut seen = std::collections::HashSet::new();
        let axes = self
            .policies
            .iter()
            .cloned()
            .chain(self.streams.iter().map(|s| format!("stream:{}", s.name)))
            .chain(self.configs.iter().map(|c| format!("config:{}", config_label(c))));
        for key in axes {
            if !seen.insert(key.clone()) {
                return Err(SweepError::DuplicateKey(key));
            }
        }

        // Stage 1: one replay (stream copy + reuse oracle) per
        // (stream, config) pair, shared across policies.
        let pairs: Vec<(usize, usize)> = (0..self.streams.len())
            .flat_map(|s| (0..self.configs.len()).map(move |c| (s, c)))
            .collect();
        let replays: Vec<(usize, usize, LlcReplay)> = sweep_cells(pairs, |(s, c)| {
            let replay = LlcReplay::new(self.configs[c].clone(), &self.streams[s].accesses);
            (s, c, replay)
        });

        // Stage 2: one task per (pair, policy) cell.
        let cell_inputs: Vec<(usize, usize)> = (0..replays.len())
            .flat_map(|r| (0..self.policies.len()).map(move |p| (r, p)))
            .collect();
        let mut cells: Vec<SweepCell> = sweep_cells(cell_inputs, |(r, p)| {
            let (s, c, ref replay) = replays[r];
            let policy_name = &self.policies[p];
            let policy = make_policy(policy_name).expect("policy resolved during validation");
            let report = replay.run(policy);
            SweepCell {
                workload: self.streams[s].name.clone(),
                config: config_label(&self.configs[c]),
                policy: policy_name.clone(),
                accesses: report.stats.accesses,
                hits: report.stats.hits,
                misses: report.stats.misses,
                miss_rate: report.miss_rate(),
                compulsory_misses: report.compulsory_misses,
                capacity_misses: report.capacity_misses,
                conflict_misses: report.conflict_misses,
                wrong_evictions: report.wrong_evictions,
                evictions: report.stats.evictions,
            }
        });

        // Canonical order before any reduction: aggregation must not observe
        // scheduling order.
        cells.sort_by(|a, b| {
            (&a.workload, &a.config, &a.policy).cmp(&(&b.workload, &b.config, &b.policy))
        });

        let mut policy_totals: Vec<PolicyTotal> = Vec::new();
        for name in &self.policies {
            let mut total = PolicyTotal {
                policy: name.clone(),
                cells: 0,
                accesses: 0,
                hits: 0,
                misses: 0,
                miss_rate: 0.0,
                wrong_evictions: 0,
            };
            for cell in cells.iter().filter(|c| &c.policy == name) {
                total.cells += 1;
                total.accesses += cell.accesses;
                total.hits += cell.hits;
                total.misses += cell.misses;
                total.wrong_evictions += cell.wrong_evictions;
            }
            if total.accesses > 0 {
                total.miss_rate = total.misses as f64 / total.accesses as f64;
            }
            policy_totals.push(total);
        }
        policy_totals.sort_by(|a, b| a.policy.cmp(&b.policy));

        Ok(SweepReport { cells, policy_totals })
    }
}

impl SweepReport {
    /// Renders the report as a fixed-width text table (cells, then
    /// per-policy totals). Stable across runs and thread counts.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:<16} {:<11} {:>9} {:>9} {:>9} {:>7} {:>6} {:>6} {:>6} {:>7}\n",
            "workload",
            "config",
            "policy",
            "accesses",
            "hits",
            "misses",
            "miss%",
            "comp",
            "cap",
            "conf",
            "wrong",
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<10} {:<16} {:<11} {:>9} {:>9} {:>9} {:>6.2}% {:>6} {:>6} {:>6} {:>7}\n",
                c.workload,
                c.config,
                c.policy,
                c.accesses,
                c.hits,
                c.misses,
                c.miss_rate * 100.0,
                c.compulsory_misses,
                c.capacity_misses,
                c.conflict_misses,
                c.wrong_evictions,
            ));
        }
        out.push('\n');
        out.push_str(&format!(
            "{:<11} {:>5} {:>10} {:>10} {:>10} {:>7} {:>7}\n",
            "policy", "cells", "accesses", "hits", "misses", "miss%", "wrong",
        ));
        for t in &self.policy_totals {
            out.push_str(&format!(
                "{:<11} {:>5} {:>10} {:>10} {:>10} {:>6.2}% {:>7}\n",
                t.policy,
                t.cells,
                t.accesses,
                t.hits,
                t.misses,
                t.miss_rate * 100.0,
                t.wrong_evictions,
            ));
        }
        out
    }

    /// The cell for a `(workload, config, policy)` key, if present.
    pub fn cell(&self, workload: &str, config: &str, policy: &str) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.config == config && c.policy == policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Address, Pc};
    use crate::replacement::RecencyPolicy;

    fn cyclic_stream(lines: u64, len: u64) -> Vec<MemoryAccess> {
        (0..len)
            .map(|i| MemoryAccess::load(Pc::new(0x400000), Address::new((i % lines) * 64), i))
            .collect()
    }

    fn lru_only(name: &str) -> Option<Box<dyn ReplacementPolicy>> {
        match name {
            "lru" => Some(Box::new(RecencyPolicy::lru())),
            "fifo" => Some(Box::new(RecencyPolicy::fifo())),
            _ => None,
        }
    }

    #[test]
    fn grid_covers_every_cell_in_canonical_order() {
        let grid = SweepGrid::default()
            .policy("lru")
            .policy("fifo")
            .stream(SweepStream::new("cyc8", cyclic_stream(8, 200)))
            .stream(SweepStream::new("cyc2", cyclic_stream(2, 200)))
            .config(CacheConfig::new("a", 1, 2, 6))
            .config(CacheConfig::new("b", 2, 2, 6));
        let report = grid.run(lru_only).expect("grid runs");
        assert_eq!(report.cells.len(), 8);
        let keys: Vec<(String, String, String)> = report
            .cells
            .iter()
            .map(|c| (c.workload.clone(), c.config.clone(), c.policy.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "cells must come out canonically sorted");
        assert_eq!(report.policy_totals.len(), 2);
    }

    #[test]
    fn cells_match_direct_replay() {
        let stream = cyclic_stream(16, 300);
        let cfg = CacheConfig::new("t", 1, 2, 6);
        let grid = SweepGrid::default()
            .policy("lru")
            .stream(SweepStream::new("w", stream.clone()))
            .config(cfg.clone());
        let report = grid.run(lru_only).expect("grid runs");
        let direct = LlcReplay::new(cfg.clone(), &stream).run(RecencyPolicy::lru());
        let cell = report.cell("w", &config_label(&cfg), "lru").expect("cell exists");
        assert_eq!(cell.hits, direct.stats.hits);
        assert_eq!(cell.misses, direct.stats.misses);
        assert_eq!(cell.compulsory_misses, direct.compulsory_misses);
        assert_eq!(cell.wrong_evictions, direct.wrong_evictions);
    }

    #[test]
    fn unknown_policy_is_an_error_not_a_panic() {
        let grid = SweepGrid::default()
            .policy("nope")
            .stream(SweepStream::new("w", cyclic_stream(4, 50)))
            .config(CacheConfig::new("t", 1, 2, 6));
        assert_eq!(grid.run(lru_only), Err(SweepError::UnknownPolicy("nope".into())));
    }

    #[test]
    fn empty_grid_is_an_error() {
        assert_eq!(SweepGrid::default().run(lru_only), Err(SweepError::EmptyGrid));
    }

    #[test]
    fn duplicate_axis_entries_are_an_error() {
        let base = |policies: &[&str]| {
            let mut g = SweepGrid::default()
                .stream(SweepStream::new("w", cyclic_stream(4, 50)))
                .config(CacheConfig::new("t", 1, 2, 6));
            g.policies = policies.iter().map(|s| (*s).to_owned()).collect();
            g
        };
        assert_eq!(
            base(&["lru", "lru"]).run(lru_only),
            Err(SweepError::DuplicateKey("lru".into()))
        );
        let two_streams = base(&["lru"]).stream(SweepStream::new("w", cyclic_stream(2, 10)));
        assert_eq!(two_streams.run(lru_only), Err(SweepError::DuplicateKey("stream:w".into())));
        // Same config label (name + geometry) twice, even via distinct values.
        let two_configs = base(&["lru"]).config(CacheConfig::new("t", 1, 2, 6).with_latency(5));
        assert_eq!(two_configs.run(lru_only), Err(SweepError::DuplicateKey("config:t@2x2".into())));
    }

    #[test]
    fn totals_sum_their_cells() {
        let grid = SweepGrid::default()
            .policy("lru")
            .stream(SweepStream::new("a", cyclic_stream(8, 128)))
            .stream(SweepStream::new("b", cyclic_stream(32, 128)))
            .config(CacheConfig::new("t", 1, 2, 6));
        let report = grid.run(lru_only).expect("grid runs");
        let total = &report.policy_totals[0];
        let hits: u64 = report.cells.iter().map(|c| c.hits).sum();
        let misses: u64 = report.cells.iter().map(|c| c.misses).sum();
        assert_eq!(total.hits, hits);
        assert_eq!(total.misses, misses);
        assert_eq!(total.cells, 2);
    }
}
