//! Parallel scenario sweeps: workload × machine × prefetcher × policy.
//!
//! The figure-generation binaries and the paper's use cases (§6.3) share
//! the same shape of work: replay every workload under every replacement
//! policy for one or more machine configurations, then tabulate hit rates,
//! the miss taxonomy, prefetch usefulness and IPC. Done serially that is
//! `|workloads| × |machines| × |prefetchers| × |policies|` independent full
//! replays — exactly the embarrassingly-parallel rollout a sweep engine
//! should spread across cores.
//!
//! Two grids are exposed:
//!
//! * [`ScenarioGrid`] — the first-class engine. Each cell transforms the
//!   workload stream through a [`Prefetcher`], replays it on a
//!   [`MachineConfig`] (full hierarchy, or LLC-only for legacy geometry
//!   sweeps), and reduces to a [`ScenarioCell`] carrying the miss taxonomy,
//!   prefetch accuracy/coverage and [`IpcModel`]-derived IPC.
//! * [`SweepGrid`] — the original `(workload × LLC CacheConfig × policy)`
//!   grid, kept as a thin adapter over [`ScenarioGrid`]: every config
//!   becomes an LLC-only machine with the `none` prefetcher, and the
//!   scenario cells convert losslessly back into [`SweepCell`]s.
//!
//! [`ScenarioGrid::run`] parallelises with rayon in two stages:
//!
//! 1. one task per `(workload, machine, prefetcher)` triple transforms the
//!    stream, runs the hierarchy filter (full-machine mode) and builds the
//!    [`LlcReplay`] (stream copy + reuse oracle) exactly once; the
//!    [`PreparedScenario`] is held behind an [`Arc`] and shared by every
//!    policy replaying the triple;
//! 2. one task per `(triple, policy)` cell runs the record-free
//!    [`LlcReplay::run_summary`] fast path and reduces it to a
//!    [`ScenarioCell`] — the summary carries the identical counters the
//!    full record-emitting replay would produce.
//!
//! **Determinism is a contract, not an accident.** Each cell's result
//! depends only on its own inputs, and the engine aggregates by collecting
//! keyed cells and sorting them by `(workload, machine, prefetcher,
//! policy)` before any reduction, so the report is byte-identical no matter
//! how many worker threads ran the grid or in what order cells finished.
//! The `sweep_determinism` integration test pins this down by diffing the
//! rendered reports across `RAYON_NUM_THREADS` settings.
//!
//! The engine lives in `cachemind-sim` and therefore cannot name concrete
//! policies from `cachemind-policies`; callers supply a policy *factory*
//! (for example `cachemind_policies::by_name`) which the driver binary in
//! `cachemind-bench` wires up.

use std::collections::HashSet;
use std::sync::Arc;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::access::{AccessKind, MemoryAccess};
use crate::config::{CacheConfig, MachineConfig};
use crate::hierarchy::CacheHierarchy;
use crate::prefetch::{Prefetcher, PrefetcherKind};
use crate::replacement::ReplacementPolicy;
use crate::replay::{EvictionRecord, LlcReplay};
use crate::timing::IpcModel;

/// A named access stream to sweep over (typically one workload's demand
/// stream), with the dynamic instruction count the IPC model charges for.
#[derive(Debug, Clone)]
pub struct SweepStream {
    /// Stable workload name used as the aggregation key.
    pub name: String,
    /// The access stream.
    pub accesses: Vec<MemoryAccess>,
    /// Total dynamic instructions behind the stream (defaults to the
    /// stream length; real workloads override with their instruction
    /// count so per-cell IPC is meaningful).
    pub instr_count: u64,
}

impl SweepStream {
    /// Bundles a name and a stream; `instr_count` defaults to the stream
    /// length.
    pub fn new(name: impl Into<String>, accesses: Vec<MemoryAccess>) -> Self {
        let instr_count = accesses.len() as u64;
        SweepStream { name: name.into(), accesses, instr_count }
    }

    /// Sets the dynamic instruction count, returning `self` for chaining.
    pub fn with_instr_count(mut self, instr_count: u64) -> Self {
        self.instr_count = instr_count;
        self
    }
}

/// The legacy grid specification: every policy replays every stream under
/// every LLC configuration. A thin adapter over [`ScenarioGrid`].
#[derive(Debug, Clone, Default)]
pub struct SweepGrid {
    /// Policy names, resolved through the caller's factory.
    pub policies: Vec<String>,
    /// Workload streams.
    pub streams: Vec<SweepStream>,
    /// LLC geometries.
    pub configs: Vec<CacheConfig>,
}

/// One `(workload, config, policy)` cell of the legacy grid, reduced to
/// its aggregate counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Workload (stream) name.
    pub workload: String,
    /// Configuration label (`name@setsxways`, see [`config_label`]).
    pub config: String,
    /// Policy name.
    pub policy: String,
    /// Accesses replayed.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Miss rate over the stream.
    pub miss_rate: f64,
    /// Compulsory misses.
    pub compulsory_misses: u64,
    /// Capacity misses.
    pub capacity_misses: u64,
    /// Conflict misses.
    pub conflict_misses: u64,
    /// Evictions whose victim was needed sooner than the inserted line.
    pub wrong_evictions: u64,
    /// Total evictions.
    pub evictions: u64,
}

/// A completed legacy sweep: cells in canonical `(workload, config,
/// policy)` order plus per-policy roll-ups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Every grid cell, canonically sorted.
    pub cells: Vec<SweepCell>,
    /// Per-policy totals across all workloads and configs, sorted by
    /// policy name.
    pub policy_totals: Vec<PolicyTotal>,
}

/// Aggregate counters for one policy across the whole grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTotal {
    /// Policy name.
    pub policy: String,
    /// Cells aggregated.
    pub cells: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Miss rate over all aggregated accesses.
    pub miss_rate: f64,
    /// Total wrong evictions.
    pub wrong_evictions: u64,
}

/// Canonical label for a configuration: `name@<sets>x<ways>`.
pub fn config_label(config: &CacheConfig) -> String {
    format!("{}@{}x{}", config.name, config.sets(), config.ways)
}

/// Order-preserving parallel map over independent sweep configurations —
/// the primitive behind both [`ScenarioGrid::run`] stages, exposed so the
/// figure binaries (`figure5_quality`, `figure6_fewshot`,
/// `ablation_sweeps`, ...) can spread their per-backend / per-parameter
/// replays across cores under the same determinism contract: each output
/// cell depends only on its own input, and results come back in input
/// order no matter how many worker threads ran them or in what order they
/// finished.
pub fn sweep_cells<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    items.into_par_iter().map(f).collect()
}

/// The policy-independent half of one scenario cell — stage 1 of the
/// scenario pipeline, shared by [`ScenarioGrid::run`] and the trace-database
/// builder: the prepared [`LlcReplay`] (stream copy + reuse oracle) and, for
/// full machines, the baseline hierarchy counters the
/// [`IpcModel`] reads.
#[derive(Debug)]
pub struct PreparedScenario {
    /// The LLC replay every policy in the cell reruns.
    pub replay: LlcReplay,
    /// Baseline hierarchy counters (full-machine mode only), with the
    /// captured LLC stream already drained into the replay.
    pub hierarchy: Option<crate::hierarchy::HierarchyReport>,
}

/// Stage 1a of the scenario pipeline: rewrites a demand stream through a
/// hardware prefetcher. Returns `None` for [`PrefetcherKind::None`] so
/// callers can borrow the original stream instead of cloning it — the
/// transform depends only on `(stream, prefetcher)`, so every machine
/// replaying the pair can share one rewritten copy.
pub fn transform_stream(
    kind: PrefetcherKind,
    accesses: &[MemoryAccess],
) -> Option<Vec<MemoryAccess>> {
    match kind {
        PrefetcherKind::None => None,
        kind => Some(Prefetcher::new(kind).transform(accesses)),
    }
}

/// Stage 1b of the scenario pipeline: prepares the policy-independent half
/// of a replay on one machine. LLC-only machines replay the (possibly
/// prefetcher-transformed) stream directly against their LLC geometry; full
/// machines filter it through L1/L2 first via [`CacheHierarchy`] and keep
/// the baseline counters the IPC model charges.
pub fn prepare_scenario(
    machine: &MachineConfig,
    accesses: &[MemoryAccess],
    instr_count: u64,
) -> PreparedScenario {
    if machine.llc_only {
        PreparedScenario {
            replay: LlcReplay::new(machine.hierarchy.llc.clone(), accesses),
            hierarchy: None,
        }
    } else {
        let mut hierarchy = CacheHierarchy::new(machine.hierarchy.clone());
        let mut report = hierarchy.run(accesses, instr_count);
        let llc_stream = std::mem::take(&mut report.llc_stream);
        PreparedScenario {
            replay: LlcReplay::from_stream(machine.hierarchy.llc.clone(), llc_stream),
            hierarchy: Some(report),
        }
    }
}

/// One prepared `(stream, machine, prefetcher)` triple — the output of
/// stage 1. The [`PreparedScenario`] sits behind an [`Arc`] so every
/// `(triple, policy)` cell of stage 2 shares the one prepared replay
/// (stream copy, reuse oracle, pre-split sets) instead of re-preparing it.
struct PreparedTriple {
    stream: usize,
    machine: usize,
    prefetcher: usize,
    scenario: Arc<PreparedScenario>,
}

/// Errors surfaced by [`ScenarioGrid::run`] and [`SweepGrid::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The policy factory returned `None` for a requested policy name.
    UnknownPolicy(String),
    /// The grid had an empty axis (no policies, streams, machines or
    /// prefetchers).
    EmptyGrid,
    /// A policy name, stream name, machine label or prefetcher label
    /// appears more than once; each axis must uniquely key its cells or
    /// cells would be silently duplicated and totals double-counted.
    DuplicateKey(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::UnknownPolicy(name) => write!(f, "unknown policy {name:?}"),
            SweepError::EmptyGrid => write!(f, "sweep grid has an empty axis"),
            SweepError::DuplicateKey(key) => write!(f, "duplicate grid key {key:?}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// One `(workload, machine, prefetcher, policy)` cell of the scenario
/// grid, reduced to its aggregate counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioCell {
    /// Workload (stream) name.
    pub workload: String,
    /// Machine label (see [`MachineConfig::machine_label`]).
    pub machine: String,
    /// Prefetcher label (see [`PrefetcherKind::label`]).
    pub prefetcher: String,
    /// Policy name.
    pub policy: String,
    /// LLC accesses replayed (demand + prefetch).
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Miss rate over the replayed LLC stream.
    pub miss_rate: f64,
    /// Demand (load/store/fetch) misses only — what the IPC model charges
    /// DRAM latency for.
    pub demand_misses: u64,
    /// Compulsory misses.
    pub compulsory_misses: u64,
    /// Capacity misses.
    pub capacity_misses: u64,
    /// Conflict misses.
    pub conflict_misses: u64,
    /// Evictions whose victim was needed sooner than the inserted line.
    pub wrong_evictions: u64,
    /// Total evictions.
    pub evictions: u64,
    /// Prefetch accesses that reached the LLC replay.
    pub prefetches: u64,
    /// Prefetch accesses that actually filled a line: prefetch misses in
    /// the LLC replay (LLC-only machines) or anywhere in the hierarchy
    /// (full machines).
    pub prefetch_fills: u64,
    /// Demand accesses served from a line a prefetch brought in, at the
    /// level the demand found it.
    pub useful_prefetches: u64,
    /// `useful_prefetches / prefetch_fills` (0 when nothing was fetched).
    pub prefetch_accuracy: f64,
    /// `useful_prefetches / (useful_prefetches + demand_misses)` — the
    /// fraction of would-be misses the prefetcher covered.
    pub prefetch_coverage: f64,
    /// Dynamic instructions charged by the IPC model.
    pub instr_count: u64,
    /// Model-estimated IPC for this cell.
    pub ipc: f64,
}

impl ScenarioCell {
    /// Hit rate over the replayed LLC stream (zero when nothing replayed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Aggregate counters for one value of a scenario axis (policy,
/// prefetcher or machine) across the whole grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisTotal {
    /// The axis value (policy name, prefetcher label or machine label).
    pub key: String,
    /// Cells aggregated.
    pub cells: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Total misses.
    pub misses: u64,
    /// Miss rate over all aggregated accesses.
    pub miss_rate: f64,
    /// Total wrong evictions.
    pub wrong_evictions: u64,
    /// Unweighted mean of the per-cell IPC estimates.
    pub mean_ipc: f64,
}

/// A completed scenario sweep: cells in canonical `(workload, machine,
/// prefetcher, policy)` order plus per-axis roll-ups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Every grid cell, canonically sorted.
    pub cells: Vec<ScenarioCell>,
    /// Per-policy roll-up, sorted by policy name.
    pub policy_totals: Vec<AxisTotal>,
    /// Per-prefetcher roll-up, sorted by prefetcher label.
    pub prefetcher_totals: Vec<AxisTotal>,
    /// Per-machine roll-up, sorted by machine label.
    pub machine_totals: Vec<AxisTotal>,
}

/// The scenario grid specification: every policy replays every stream
/// under every machine and prefetcher.
#[derive(Debug, Clone, Default)]
pub struct ScenarioGrid {
    /// Policy names, resolved through the caller's factory.
    pub policies: Vec<String>,
    /// Workload streams.
    pub streams: Vec<SweepStream>,
    /// Machine configurations.
    pub machines: Vec<MachineConfig>,
    /// Prefetcher kinds.
    pub prefetchers: Vec<PrefetcherKind>,
    /// Optional memory-level-parallelism override applied to every cell's
    /// IPC model (pointer-chasing studies use 1.0).
    pub mlp_override: Option<f64>,
}

/// Walks a replay's records and counts prefetch usefulness, returning
/// `(fills, useful)`: a prefetch *fill* (prefetch miss) marks its line
/// pending; a demand hit on a pending line is a *useful* prefetch; eviction
/// or a demand miss clears the line. This is the LLC-only counterpart of
/// the hierarchy's own usefulness counters (full machines consume useful
/// prefetches at L1, which an LLC replay never sees); the trace-database
/// builder reuses it to annotate prefetcher-qualified entries.
pub fn prefetch_usefulness(records: &[EvictionRecord], line_bits: u32) -> (u64, u64) {
    let mut pending: HashSet<u64> = HashSet::new();
    let mut fills = 0u64;
    let mut useful = 0u64;
    for r in records {
        if let Some(evicted) = r.evicted_address {
            pending.remove(&(evicted.value() >> line_bits));
        }
        let line = r.address.value() >> line_bits;
        if r.kind == AccessKind::Prefetch {
            if r.is_miss && !r.bypassed {
                fills += 1;
                pending.insert(line);
            }
        } else if !r.is_miss && pending.remove(&line) {
            useful += 1;
        } else {
            pending.remove(&line);
        }
    }
    (fills, useful)
}

fn axis_totals<'c, K>(cells: &'c [ScenarioCell], key: K) -> Vec<AxisTotal>
where
    K: Fn(&'c ScenarioCell) -> &'c str,
{
    let mut keys: Vec<&str> = cells.iter().map(&key).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.into_iter()
        .map(|k| {
            let mut total = AxisTotal {
                key: k.to_owned(),
                cells: 0,
                accesses: 0,
                hits: 0,
                misses: 0,
                miss_rate: 0.0,
                wrong_evictions: 0,
                mean_ipc: 0.0,
            };
            let mut ipc_sum = 0.0;
            for cell in cells.iter().filter(|c| key(c) == k) {
                total.cells += 1;
                total.accesses += cell.accesses;
                total.hits += cell.hits;
                total.misses += cell.misses;
                total.wrong_evictions += cell.wrong_evictions;
                ipc_sum += cell.ipc;
            }
            if total.accesses > 0 {
                total.miss_rate = total.misses as f64 / total.accesses as f64;
            }
            if total.cells > 0 {
                total.mean_ipc = ipc_sum / total.cells as f64;
            }
            total
        })
        .collect()
}

impl ScenarioGrid {
    /// Builder-style: adds a policy name.
    pub fn policy(mut self, name: impl Into<String>) -> Self {
        self.policies.push(name.into());
        self
    }

    /// Builder-style: adds a stream.
    pub fn stream(mut self, stream: SweepStream) -> Self {
        self.streams.push(stream);
        self
    }

    /// Builder-style: adds a machine.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machines.push(machine);
        self
    }

    /// Builder-style: adds a prefetcher kind.
    pub fn prefetcher(mut self, kind: PrefetcherKind) -> Self {
        self.prefetchers.push(kind);
        self
    }

    /// Overrides the IPC model's effective memory-level parallelism for
    /// every cell (pointer-chasing studies use 1.0).
    pub fn with_mlp(mut self, mlp: f64) -> Self {
        self.mlp_override = Some(mlp);
        self
    }

    /// Number of grid cells.
    pub fn cells(&self) -> usize {
        self.policies.len() * self.streams.len() * self.machines.len() * self.prefetchers.len()
    }

    fn validate<F>(&self, make_policy: &F) -> Result<(), SweepError>
    where
        F: Fn(&str) -> Option<Box<dyn ReplacementPolicy>> + Sync,
    {
        if self.cells() == 0 {
            return Err(SweepError::EmptyGrid);
        }
        // Fail fast (and deterministically) on unresolvable policy names
        // instead of panicking from a worker mid-sweep.
        for name in &self.policies {
            if make_policy(name).is_none() {
                return Err(SweepError::UnknownPolicy(name.clone()));
            }
        }
        // Every grid axis must be duplicate-free, or cells lose their
        // unique (workload, machine, prefetcher, policy) key and totals
        // double-count.
        let mut seen = HashSet::new();
        let axes = self
            .policies
            .iter()
            .cloned()
            .chain(self.streams.iter().map(|s| format!("stream:{}", s.name)))
            .chain(self.machines.iter().map(|m| format!("machine:{}", m.machine_label())))
            .chain(self.prefetchers.iter().map(|p| format!("prefetcher:{}", p.label())));
        for key in axes {
            if !seen.insert(key.clone()) {
                return Err(SweepError::DuplicateKey(key));
            }
        }
        Ok(())
    }

    /// Stage 1 of the scenario pipeline: transforms each `(stream,
    /// prefetcher)` pair once (1a) and prepares each `(stream, machine,
    /// prefetcher)` triple once (1b). Exactly
    /// `streams × machines × prefetchers` prepare tasks run, regardless of
    /// how many policies will replay each triple.
    fn prepare_stage(&self) -> Vec<PreparedTriple> {
        // Stage 1a ([`transform_stream`]): one task per (stream,
        // prefetcher) pair — the transform depends only on those two axes,
        // so every machine replaying the pair shares one transformed stream
        // instead of rebuilding its own copy. `None` (the whole legacy
        // adapter path) borrows the original stream rather than cloning it.
        let pairs: Vec<(usize, usize)> = (0..self.streams.len())
            .flat_map(|s| (0..self.prefetchers.len()).map(move |p| (s, p)))
            .collect();
        let transformed_streams: Vec<Option<Vec<MemoryAccess>>> = sweep_cells(pairs, |(s, p)| {
            transform_stream(self.prefetchers[p], &self.streams[s].accesses)
        });

        // Stage 1b ([`prepare_scenario`]): one task per (stream, machine,
        // prefetcher) triple — hierarchy filter (full-machine mode) and the
        // replay's reuse oracle are the expensive, policy-independent
        // parts, shared by every policy replaying the triple.
        let triples: Vec<(usize, usize, usize)> = (0..self.streams.len())
            .flat_map(|s| {
                (0..self.machines.len())
                    .flat_map(move |m| (0..self.prefetchers.len()).map(move |p| (s, m, p)))
            })
            .collect();
        sweep_cells(triples, |(s, m, p)| {
            let stream = &self.streams[s];
            let transformed: &[MemoryAccess] =
                match &transformed_streams[s * self.prefetchers.len() + p] {
                    Some(rewritten) => rewritten,
                    None => &stream.accesses,
                };
            let scenario = prepare_scenario(&self.machines[m], transformed, stream.instr_count);
            PreparedTriple { stream: s, machine: m, prefetcher: p, scenario: Arc::new(scenario) }
        })
    }

    /// Runs the full grid in parallel.
    ///
    /// `make_policy` is called once per cell, on the worker thread that
    /// replays the cell, so policies need not be `Send`/`Sync` themselves —
    /// only the factory must be shareable.
    pub fn run<F>(&self, make_policy: F) -> Result<ScenarioReport, SweepError>
    where
        F: Fn(&str) -> Option<Box<dyn ReplacementPolicy>> + Sync,
    {
        self.validate(&make_policy)?;

        // Stage timings feed the process-global telemetry registry only —
        // wall-clock side channels the bench bins report; nothing below
        // reads them back.
        let prepare_span = cachemind_obs::global().span(cachemind_obs::names::SWEEP_PREPARE);
        let prepared = self.prepare_stage();
        prepare_span.finish();
        // Every cell beyond the first per triple reuses a prepared
        // scenario instead of re-preparing it; the count is a deterministic
        // function of the grid shape.
        cachemind_obs::global()
            .counter(cachemind_obs::names::SWEEP_PREPARE_REUSE)
            .add((self.cells() - prepared.len()) as u64);
        let replay_span = cachemind_obs::global().span(cachemind_obs::names::SWEEP_REPLAY);

        // Stage 2: one task per (triple, policy) cell, on the record-free
        // summary fast path.
        let cell_inputs: Vec<(usize, usize)> = (0..prepared.len())
            .flat_map(|t| (0..self.policies.len()).map(move |p| (t, p)))
            .collect();
        let mut cells: Vec<ScenarioCell> = sweep_cells(cell_inputs, |(t, p)| {
            let cell_span = cachemind_obs::global().span(cachemind_obs::names::SWEEP_CELL_REPLAY);
            let triple = &prepared[t];
            let scenario = Arc::clone(&triple.scenario);
            let stream = &self.streams[triple.stream];
            let machine = &self.machines[triple.machine];
            let policy_name = &self.policies[p];
            let policy = make_policy(policy_name).expect("policy resolved during validation");
            let summary = scenario.replay.run_summary(policy);
            // LLC-only cells take the replay's streaming usefulness
            // counters (identical to `prefetch_usefulness` over the full
            // records); full-machine cells take the hierarchy's, because a
            // useful prefetch is typically consumed by an L1 hit the LLC
            // replay never sees.
            let (prefetch_fills, useful_prefetches) = match &scenario.hierarchy {
                Some(hreport) => (hreport.prefetch_fills, hreport.useful_prefetches),
                None => (summary.prefetch_fills, summary.useful_prefetches),
            };

            let mut model = IpcModel::from_config(&machine.hierarchy);
            if let Some(mlp) = self.mlp_override {
                model = model.with_mlp(mlp);
            }
            let demand_misses = summary.stats.demand_misses;
            let ipc = match &scenario.hierarchy {
                Some(hreport) => model.ipc(hreport, demand_misses),
                None => {
                    // LLC-only mode: demand accesses pay the LLC hit
                    // latency, demand misses pay DRAM; prefetches do not
                    // stall the core.
                    let demand_accesses = summary.stats.accesses - summary.stats.prefetches;
                    let demand_hits = demand_accesses.saturating_sub(demand_misses);
                    model.ipc_from_llc(stream.instr_count, demand_hits, demand_misses)
                }
            };
            let prefetch_accuracy = if prefetch_fills == 0 {
                0.0
            } else {
                useful_prefetches as f64 / prefetch_fills as f64
            };
            let covered = useful_prefetches + demand_misses;
            let prefetch_coverage =
                if covered == 0 { 0.0 } else { useful_prefetches as f64 / covered as f64 };

            let cell = ScenarioCell {
                workload: stream.name.clone(),
                machine: machine.machine_label(),
                prefetcher: self.prefetchers[triple.prefetcher].label(),
                policy: policy_name.clone(),
                accesses: summary.stats.accesses,
                hits: summary.stats.hits,
                misses: summary.stats.misses,
                miss_rate: summary.miss_rate(),
                demand_misses,
                compulsory_misses: summary.compulsory_misses,
                capacity_misses: summary.capacity_misses,
                conflict_misses: summary.conflict_misses,
                wrong_evictions: summary.wrong_evictions,
                evictions: summary.stats.evictions,
                prefetches: summary.stats.prefetches,
                prefetch_fills,
                useful_prefetches,
                prefetch_accuracy,
                prefetch_coverage,
                instr_count: stream.instr_count,
                ipc,
            };
            cell_span.finish();
            cell
        });

        // Canonical order before any reduction: aggregation must not
        // observe scheduling order.
        cells.sort_by(|a, b| {
            (&a.workload, &a.machine, &a.prefetcher, &a.policy).cmp(&(
                &b.workload,
                &b.machine,
                &b.prefetcher,
                &b.policy,
            ))
        });

        let policy_totals = axis_totals(&cells, |c| c.policy.as_str());
        let prefetcher_totals = axis_totals(&cells, |c| c.prefetcher.as_str());
        let machine_totals = axis_totals(&cells, |c| c.machine.as_str());
        replay_span.finish();

        Ok(ScenarioReport { cells, policy_totals, prefetcher_totals, machine_totals })
    }
}

impl ScenarioReport {
    /// The cell for a `(workload, machine, prefetcher, policy)` key, if
    /// present.
    pub fn cell(
        &self,
        workload: &str,
        machine: &str,
        prefetcher: &str,
        policy: &str,
    ) -> Option<&ScenarioCell> {
        self.cells.iter().find(|c| {
            c.workload == workload
                && c.machine == machine
                && c.prefetcher == prefetcher
                && c.policy == policy
        })
    }

    /// Renders the report as a fixed-width text table (cells, then the
    /// three axis roll-ups). Stable across runs and thread counts.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:<26} {:<10} {:<11} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>8}\n",
            "workload",
            "machine",
            "prefetch",
            "policy",
            "accesses",
            "misses",
            "miss%",
            "pf-acc%",
            "pf-cov%",
            "wrong",
            "ipc",
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<10} {:<26} {:<10} {:<11} {:>9} {:>9} {:>6.2}% {:>6.2}% {:>6.2}% {:>7} {:>8.4}\n",
                c.workload,
                c.machine,
                c.prefetcher,
                c.policy,
                c.accesses,
                c.misses,
                c.miss_rate * 100.0,
                c.prefetch_accuracy * 100.0,
                c.prefetch_coverage * 100.0,
                c.wrong_evictions,
                c.ipc,
            ));
        }
        for (title, totals) in [
            ("policy", &self.policy_totals),
            ("prefetcher", &self.prefetcher_totals),
            ("machine", &self.machine_totals),
        ] {
            out.push('\n');
            out.push_str(&format!(
                "{:<26} {:>5} {:>10} {:>10} {:>7} {:>7} {:>8}\n",
                title, "cells", "accesses", "misses", "miss%", "wrong", "mean-ipc",
            ));
            for t in totals.iter() {
                out.push_str(&format!(
                    "{:<26} {:>5} {:>10} {:>10} {:>6.2}% {:>7} {:>8.4}\n",
                    t.key,
                    t.cells,
                    t.accesses,
                    t.misses,
                    t.miss_rate * 100.0,
                    t.wrong_evictions,
                    t.mean_ipc,
                ));
            }
        }
        out
    }
}

impl SweepGrid {
    /// Builder-style: adds a policy name.
    pub fn policy(mut self, name: impl Into<String>) -> Self {
        self.policies.push(name.into());
        self
    }

    /// Builder-style: adds a stream.
    pub fn stream(mut self, stream: SweepStream) -> Self {
        self.streams.push(stream);
        self
    }

    /// Builder-style: adds a configuration.
    pub fn config(mut self, config: CacheConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Number of grid cells.
    pub fn cells(&self) -> usize {
        self.policies.len() * self.streams.len() * self.configs.len()
    }

    /// The equivalent scenario grid: every LLC geometry becomes an
    /// LLC-only [`MachineConfig`] and the prefetcher axis is pinned to
    /// [`PrefetcherKind::None`].
    pub fn to_scenario(&self) -> ScenarioGrid {
        ScenarioGrid {
            policies: self.policies.clone(),
            streams: self.streams.clone(),
            machines: self.configs.iter().map(|c| MachineConfig::llc_only(c.clone())).collect(),
            prefetchers: vec![PrefetcherKind::None],
            mlp_override: None,
        }
    }

    /// Runs the full grid in parallel by delegating to
    /// [`ScenarioGrid::run`] and converting the scenario cells back into
    /// the legacy report shape. Numbers are identical to the original
    /// LLC-only engine: an LLC-only machine replays the untouched stream
    /// directly against the configured geometry.
    pub fn run<F>(&self, make_policy: F) -> Result<SweepReport, SweepError>
    where
        F: Fn(&str) -> Option<Box<dyn ReplacementPolicy>> + Sync,
    {
        let report = self.to_scenario().run(make_policy)?;
        // (workload, machine, none, policy) order == (workload, config,
        // policy) order: the prefetcher axis is a single constant and
        // llc-only machine labels are exactly the legacy config labels.
        let cells: Vec<SweepCell> = report
            .cells
            .into_iter()
            .map(|c| SweepCell {
                workload: c.workload,
                config: c.machine,
                policy: c.policy,
                accesses: c.accesses,
                hits: c.hits,
                misses: c.misses,
                miss_rate: c.miss_rate,
                compulsory_misses: c.compulsory_misses,
                capacity_misses: c.capacity_misses,
                conflict_misses: c.conflict_misses,
                wrong_evictions: c.wrong_evictions,
                evictions: c.evictions,
            })
            .collect();
        let policy_totals: Vec<PolicyTotal> = report
            .policy_totals
            .into_iter()
            .map(|t| PolicyTotal {
                policy: t.key,
                cells: t.cells,
                accesses: t.accesses,
                hits: t.hits,
                misses: t.misses,
                miss_rate: t.miss_rate,
                wrong_evictions: t.wrong_evictions,
            })
            .collect();
        Ok(SweepReport { cells, policy_totals })
    }
}

impl SweepReport {
    /// Renders the report as a fixed-width text table (cells, then
    /// per-policy totals). Stable across runs and thread counts.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:<16} {:<11} {:>9} {:>9} {:>9} {:>7} {:>6} {:>6} {:>6} {:>7}\n",
            "workload",
            "config",
            "policy",
            "accesses",
            "hits",
            "misses",
            "miss%",
            "comp",
            "cap",
            "conf",
            "wrong",
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<10} {:<16} {:<11} {:>9} {:>9} {:>9} {:>6.2}% {:>6} {:>6} {:>6} {:>7}\n",
                c.workload,
                c.config,
                c.policy,
                c.accesses,
                c.hits,
                c.misses,
                c.miss_rate * 100.0,
                c.compulsory_misses,
                c.capacity_misses,
                c.conflict_misses,
                c.wrong_evictions,
            ));
        }
        out.push('\n');
        out.push_str(&format!(
            "{:<11} {:>5} {:>10} {:>10} {:>10} {:>7} {:>7}\n",
            "policy", "cells", "accesses", "hits", "misses", "miss%", "wrong",
        ));
        for t in &self.policy_totals {
            out.push_str(&format!(
                "{:<11} {:>5} {:>10} {:>10} {:>10} {:>6.2}% {:>7}\n",
                t.policy,
                t.cells,
                t.accesses,
                t.hits,
                t.misses,
                t.miss_rate * 100.0,
                t.wrong_evictions,
            ));
        }
        out
    }

    /// The cell for a `(workload, config, policy)` key, if present.
    pub fn cell(&self, workload: &str, config: &str, policy: &str) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.config == config && c.policy == policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Address, Pc};
    use crate::config::HierarchyConfig;
    use crate::replacement::RecencyPolicy;

    fn cyclic_stream(lines: u64, len: u64) -> Vec<MemoryAccess> {
        (0..len)
            .map(|i| MemoryAccess::load(Pc::new(0x400000), Address::new((i % lines) * 64), i))
            .collect()
    }

    fn sequential_stream(len: u64) -> Vec<MemoryAccess> {
        (0..len).map(|i| MemoryAccess::load(Pc::new(0x400100), Address::new(i * 64), i)).collect()
    }

    fn lru_only(name: &str) -> Option<Box<dyn ReplacementPolicy>> {
        match name {
            "lru" => Some(Box::new(RecencyPolicy::lru())),
            "fifo" => Some(Box::new(RecencyPolicy::fifo())),
            _ => None,
        }
    }

    #[test]
    fn grid_covers_every_cell_in_canonical_order() {
        let grid = SweepGrid::default()
            .policy("lru")
            .policy("fifo")
            .stream(SweepStream::new("cyc8", cyclic_stream(8, 200)))
            .stream(SweepStream::new("cyc2", cyclic_stream(2, 200)))
            .config(CacheConfig::new("a", 1, 2, 6))
            .config(CacheConfig::new("b", 2, 2, 6));
        let report = grid.run(lru_only).expect("grid runs");
        assert_eq!(report.cells.len(), 8);
        let keys: Vec<(String, String, String)> = report
            .cells
            .iter()
            .map(|c| (c.workload.clone(), c.config.clone(), c.policy.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "cells must come out canonically sorted");
        assert_eq!(report.policy_totals.len(), 2);
    }

    #[test]
    fn cells_match_direct_replay() {
        let stream = cyclic_stream(16, 300);
        let cfg = CacheConfig::new("t", 1, 2, 6);
        let grid = SweepGrid::default()
            .policy("lru")
            .stream(SweepStream::new("w", stream.clone()))
            .config(cfg.clone());
        let report = grid.run(lru_only).expect("grid runs");
        let direct = LlcReplay::new(cfg.clone(), &stream).run(RecencyPolicy::lru());
        let cell = report.cell("w", &config_label(&cfg), "lru").expect("cell exists");
        assert_eq!(cell.hits, direct.stats.hits);
        assert_eq!(cell.misses, direct.stats.misses);
        assert_eq!(cell.compulsory_misses, direct.compulsory_misses);
        assert_eq!(cell.wrong_evictions, direct.wrong_evictions);
    }

    #[test]
    fn unknown_policy_is_an_error_not_a_panic() {
        let grid = SweepGrid::default()
            .policy("nope")
            .stream(SweepStream::new("w", cyclic_stream(4, 50)))
            .config(CacheConfig::new("t", 1, 2, 6));
        assert_eq!(grid.run(lru_only), Err(SweepError::UnknownPolicy("nope".into())));
    }

    #[test]
    fn empty_grid_is_an_error() {
        assert_eq!(SweepGrid::default().run(lru_only), Err(SweepError::EmptyGrid));
        assert_eq!(ScenarioGrid::default().run(lru_only), Err(SweepError::EmptyGrid));
    }

    #[test]
    fn duplicate_axis_entries_are_an_error() {
        let base = |policies: &[&str]| {
            let mut g = SweepGrid::default()
                .stream(SweepStream::new("w", cyclic_stream(4, 50)))
                .config(CacheConfig::new("t", 1, 2, 6));
            g.policies = policies.iter().map(|s| (*s).to_owned()).collect();
            g
        };
        assert_eq!(
            base(&["lru", "lru"]).run(lru_only),
            Err(SweepError::DuplicateKey("lru".into()))
        );
        let two_streams = base(&["lru"]).stream(SweepStream::new("w", cyclic_stream(2, 10)));
        assert_eq!(two_streams.run(lru_only), Err(SweepError::DuplicateKey("stream:w".into())));
        // Same config label (name + geometry) twice, even via distinct values.
        let two_configs = base(&["lru"]).config(CacheConfig::new("t", 1, 2, 6).with_latency(5));
        assert_eq!(
            two_configs.run(lru_only),
            Err(SweepError::DuplicateKey("machine:t@2x2".into()))
        );
        // Scenario axes: duplicate prefetcher labels are rejected too.
        let grid = SweepGrid::default()
            .policy("lru")
            .stream(SweepStream::new("w", cyclic_stream(4, 50)))
            .config(CacheConfig::new("t", 1, 2, 6))
            .to_scenario()
            .prefetcher(PrefetcherKind::None);
        assert_eq!(grid.run(lru_only), Err(SweepError::DuplicateKey("prefetcher:none".into())));
    }

    #[test]
    fn totals_sum_their_cells() {
        let grid = SweepGrid::default()
            .policy("lru")
            .stream(SweepStream::new("a", cyclic_stream(8, 128)))
            .stream(SweepStream::new("b", cyclic_stream(32, 128)))
            .config(CacheConfig::new("t", 1, 2, 6));
        let report = grid.run(lru_only).expect("grid runs");
        let total = &report.policy_totals[0];
        let hits: u64 = report.cells.iter().map(|c| c.hits).sum();
        let misses: u64 = report.cells.iter().map(|c| c.misses).sum();
        assert_eq!(total.hits, hits);
        assert_eq!(total.misses, misses);
        assert_eq!(total.cells, 2);
    }

    #[test]
    fn scenario_covers_full_cross_product() {
        let grid = ScenarioGrid::default()
            .policy("lru")
            .policy("fifo")
            .stream(SweepStream::new("seq", sequential_stream(600)))
            .stream(SweepStream::new("cyc", cyclic_stream(16, 600)))
            .machine(MachineConfig::new("table2", HierarchyConfig::table2()))
            .machine(MachineConfig::new("small", HierarchyConfig::small()))
            .prefetcher(PrefetcherKind::None)
            .prefetcher(PrefetcherKind::NextLine);
        assert_eq!(grid.cells(), 16);
        let report = grid.run(lru_only).expect("grid runs");
        assert_eq!(report.cells.len(), 16);
        let keys: Vec<_> = report
            .cells
            .iter()
            .map(|c| {
                (c.workload.clone(), c.machine.clone(), c.prefetcher.clone(), c.policy.clone())
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "cells must come out canonically sorted");
        assert_eq!(report.policy_totals.len(), 2);
        assert_eq!(report.prefetcher_totals.len(), 2);
        assert_eq!(report.machine_totals.len(), 2);
        for cell in &report.cells {
            assert!(cell.ipc > 0.0, "cell {cell:?} must report IPC");
        }
        // The rendered table mentions every axis section.
        let table = report.to_table();
        for needle in ["prefetcher", "machine", "mean-ipc", "table2@llc2048x16+dram160"] {
            assert!(table.contains(needle), "table missing {needle}:\n{table}");
        }
    }

    #[test]
    fn next_line_prefetching_covers_a_sequential_stream() {
        let grid = ScenarioGrid::default()
            .policy("lru")
            .stream(SweepStream::new("seq", sequential_stream(2048)))
            .machine(MachineConfig::llc_only(CacheConfig::new("LLC", 4, 4, 6)))
            .prefetcher(PrefetcherKind::None)
            .prefetcher(PrefetcherKind::NextLine);
        let report = grid.run(lru_only).expect("grid runs");
        let base = report.cell("seq", "LLC@16x4", "none", "lru").expect("baseline cell");
        let pf = report.cell("seq", "LLC@16x4", "nextline", "lru").expect("prefetch cell");
        assert_eq!(base.prefetches, 0);
        assert_eq!(base.prefetch_accuracy, 0.0);
        assert!(pf.prefetch_fills > 0);
        assert!(
            pf.prefetch_accuracy > 0.9,
            "next-line on a sequential stream should be accurate: {}",
            pf.prefetch_accuracy
        );
        assert!(
            pf.prefetch_coverage > 0.9,
            "next-line should cover the stream: {}",
            pf.prefetch_coverage
        );
        assert!(pf.demand_misses < base.demand_misses);
        assert!(pf.ipc > base.ipc, "covered misses must raise IPC");
    }

    #[test]
    fn full_machine_prefetch_counters_come_from_the_hierarchy() {
        // On a full machine a useful next-line prefetch is consumed by an
        // L1 hit the LLC replay never observes — the cell must still
        // report high accuracy/coverage (from the hierarchy's counters).
        let grid = ScenarioGrid::default()
            .policy("lru")
            .stream(SweepStream::new("seq", sequential_stream(2048)))
            .machine(MachineConfig::new("small", HierarchyConfig::small()))
            .prefetcher(PrefetcherKind::NextLine);
        let report = grid.run(lru_only).expect("grid runs");
        let cell = &report.cells[0];
        assert!(cell.prefetch_fills > 0);
        assert!(cell.prefetch_accuracy > 0.9, "accuracy {}", cell.prefetch_accuracy);
        assert!(cell.prefetch_coverage > 0.9, "coverage {}", cell.prefetch_coverage);
    }

    #[test]
    fn llc_only_ipc_matches_manual_model() {
        let cfg = CacheConfig::new("LLC", 3, 4, 6);
        let stream = cyclic_stream(64, 500);
        let grid = ScenarioGrid::default()
            .policy("lru")
            .stream(SweepStream::new("w", stream.clone()).with_instr_count(5_000))
            .machine(MachineConfig::llc_only(cfg.clone()))
            .prefetcher(PrefetcherKind::None);
        let report = grid.run(lru_only).expect("grid runs");
        let cell = &report.cells[0];
        assert_eq!(cell.instr_count, 5_000);
        let direct = LlcReplay::new(cfg.clone(), &stream).run(RecencyPolicy::lru());
        let machine = MachineConfig::llc_only(cfg);
        let model = IpcModel::from_config(&machine.hierarchy);
        let expected = model.ipc_from_llc(
            5_000,
            direct.stats.accesses - direct.stats.demand_misses,
            direct.stats.demand_misses,
        );
        assert!((cell.ipc - expected).abs() < 1e-12, "{} vs {}", cell.ipc, expected);
    }

    #[test]
    fn full_machine_cells_filter_through_the_hierarchy() {
        // A hot 4-line loop: L1 absorbs nearly everything, so the
        // full-machine cell sees far fewer LLC accesses than the LLC-only
        // cell replaying the raw stream.
        let stream = cyclic_stream(4, 400);
        let grid = ScenarioGrid::default()
            .policy("lru")
            .stream(SweepStream::new("hot", stream.clone()))
            .machine(MachineConfig::new("small", HierarchyConfig::small()))
            .machine(MachineConfig::llc_only(CacheConfig::small_llc()))
            .prefetcher(PrefetcherKind::None);
        let report = grid.run(lru_only).expect("grid runs");
        let full = report.cell("hot", "small@llc64x4+dram160", "none", "lru").unwrap();
        let raw = report.cell("hot", "LLC@64x4", "none", "lru").unwrap();
        assert!(full.accesses < raw.accesses / 10, "{} vs {}", full.accesses, raw.accesses);
        assert!(full.ipc > raw.ipc, "an L1-resident loop must run faster with caches modelled");
    }

    #[test]
    fn dram_latency_lowers_ipc() {
        let stream = sequential_stream(1500);
        let grid = ScenarioGrid::default()
            .policy("lru")
            .stream(SweepStream::new("seq", stream))
            .machine(MachineConfig::new("fast", HierarchyConfig::small()).with_dram_latency(100))
            .machine(MachineConfig::new("slow", HierarchyConfig::small()).with_dram_latency(800))
            .prefetcher(PrefetcherKind::None);
        let report = grid.run(lru_only).expect("grid runs");
        let fast = report.cell("seq", "fast@llc64x4+dram100", "none", "lru").unwrap();
        let slow = report.cell("seq", "slow@llc64x4+dram800", "none", "lru").unwrap();
        assert!(fast.ipc > slow.ipc, "fast {} vs slow {}", fast.ipc, slow.ipc);
    }

    #[test]
    fn mlp_override_serialises_misses() {
        let stream = sequential_stream(1000);
        let base = ScenarioGrid::default()
            .policy("lru")
            .stream(SweepStream::new("seq", stream.clone()))
            .machine(MachineConfig::llc_only(CacheConfig::new("LLC", 3, 4, 6).with_mshr(64)))
            .prefetcher(PrefetcherKind::None);
        let parallel = base.clone().run(lru_only).expect("runs");
        let serial = base.with_mlp(1.0).run(lru_only).expect("runs");
        assert!(
            serial.cells[0].ipc < parallel.cells[0].ipc,
            "MLP=1 must hurt a miss-heavy stream: {} vs {}",
            serial.cells[0].ipc,
            parallel.cells[0].ipc
        );
    }

    #[test]
    fn prepare_stage_runs_one_task_per_triple() {
        // 2 streams x 1 machine x 2 prefetchers x 2 policies = 8 cells,
        // but stage 1 must prepare only the 4 (stream, machine, prefetcher)
        // triples; each policy replay shares its triple's Arc.
        let grid = ScenarioGrid::default()
            .policy("lru")
            .policy("fifo")
            .stream(SweepStream::new("seq", sequential_stream(100)))
            .stream(SweepStream::new("cyc", cyclic_stream(8, 100)))
            .machine(MachineConfig::llc_only(CacheConfig::new("LLC", 2, 2, 6)))
            .prefetcher(PrefetcherKind::None)
            .prefetcher(PrefetcherKind::NextLine);
        assert_eq!(grid.cells(), 8);
        let prepared = grid.prepare_stage();
        assert_eq!(
            prepared.len(),
            grid.streams.len() * grid.machines.len() * grid.prefetchers.len()
        );
        for triple in &prepared {
            assert_eq!(std::sync::Arc::strong_count(&triple.scenario), 1);
        }
        // The full run produces one cell per (triple, policy).
        let report = grid.run(lru_only).expect("grid runs");
        assert_eq!(report.cells.len(), prepared.len() * grid.policies.len());
    }

    #[test]
    fn adapter_report_is_lossless() {
        let grid = SweepGrid::default()
            .policy("lru")
            .policy("fifo")
            .stream(SweepStream::new("cyc", cyclic_stream(8, 200)))
            .config(CacheConfig::new("a", 1, 2, 6))
            .config(CacheConfig::new("b", 2, 2, 6));
        let legacy = grid.run(lru_only).expect("legacy runs");
        let scenario = grid.to_scenario().run(lru_only).expect("scenario runs");
        assert_eq!(legacy.cells.len(), scenario.cells.len());
        for (l, s) in legacy.cells.iter().zip(&scenario.cells) {
            assert_eq!(l.workload, s.workload);
            assert_eq!(l.config, s.machine);
            assert_eq!(l.policy, s.policy);
            assert_eq!(l.hits, s.hits);
            assert_eq!(l.misses, s.misses);
            assert_eq!(l.miss_rate, s.miss_rate);
            assert_eq!(s.prefetcher, "none");
        }
    }
}
