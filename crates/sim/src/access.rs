//! Memory access records — the unit of work the simulator consumes.

use serde::{Deserialize, Serialize};

use crate::addr::{Address, Pc};

/// The kind of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A demand load.
    Load,
    /// A demand store.
    Store,
    /// An instruction fetch.
    Fetch,
    /// A software or hardware prefetch (non-demand; does not stall the core).
    Prefetch,
}

impl AccessKind {
    /// Whether this access stalls the core when it misses.
    pub const fn is_demand(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Store | AccessKind::Fetch)
    }
}

/// One memory access in a workload trace.
///
/// `instr_index` is the dynamic instruction count at which the access occurs;
/// it lets the timing model attribute non-memory work between accesses.
///
/// ```rust
/// use cachemind_sim::access::{AccessKind, MemoryAccess};
/// use cachemind_sim::addr::{Address, Pc};
///
/// let a = MemoryAccess::load(Pc::new(0x400512), Address::new(0x7fff0010), 120);
/// assert_eq!(a.kind, AccessKind::Load);
/// assert!(a.kind.is_demand());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// Program counter of the instruction issuing the access.
    pub pc: Pc,
    /// Byte address being accessed.
    pub address: Address,
    /// Kind of access.
    pub kind: AccessKind,
    /// Dynamic instruction index at which the access occurs.
    pub instr_index: u64,
}

impl MemoryAccess {
    /// Creates a demand load access.
    pub const fn load(pc: Pc, address: Address, instr_index: u64) -> Self {
        MemoryAccess { pc, address, kind: AccessKind::Load, instr_index }
    }

    /// Creates a demand store access.
    pub const fn store(pc: Pc, address: Address, instr_index: u64) -> Self {
        MemoryAccess { pc, address, kind: AccessKind::Store, instr_index }
    }

    /// Creates an instruction fetch access.
    pub const fn fetch(pc: Pc, address: Address, instr_index: u64) -> Self {
        MemoryAccess { pc, address, kind: AccessKind::Fetch, instr_index }
    }

    /// Creates a prefetch access.
    pub const fn prefetch(pc: Pc, address: Address, instr_index: u64) -> Self {
        MemoryAccess { pc, address, kind: AccessKind::Prefetch, instr_index }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_classification() {
        assert!(AccessKind::Load.is_demand());
        assert!(AccessKind::Store.is_demand());
        assert!(AccessKind::Fetch.is_demand());
        assert!(!AccessKind::Prefetch.is_demand());
    }

    #[test]
    fn constructors_set_kind() {
        let pc = Pc::new(1);
        let addr = Address::new(2);
        assert_eq!(MemoryAccess::load(pc, addr, 0).kind, AccessKind::Load);
        assert_eq!(MemoryAccess::store(pc, addr, 0).kind, AccessKind::Store);
        assert_eq!(MemoryAccess::fetch(pc, addr, 0).kind, AccessKind::Fetch);
        assert_eq!(MemoryAccess::prefetch(pc, addr, 0).kind, AccessKind::Prefetch);
    }
}
