//! [`ScenarioSelector`] — the typed scope of a scenario-aware query.
//!
//! PR 3 made every layer *produce* per-scenario facts (machine label + IPC
//! in trace metadata); this type is how a query *asks* for them. A selector
//! names any subset of the four scenario axes — workload, machine,
//! prefetcher, replacement policy — and has a canonical text form
//!
//! ```text
//! workload@machine+prefetcher/policy
//! ```
//!
//! with every component optional: `mcf@table2/lru`, `@small`, `+stride4`,
//! `mcf` and the empty string are all valid. The machine component may be a
//! preset *name* (`table2`) or a full canonical label
//! (`table2@llc2048x16+dram160`); [`ScenarioSelector::matches_machine`]
//! accepts either. Because canonical machine labels themselves contain `@`
//! and `+`, parsing is anchored on the *known* vocabulary where it must be:
//! a trailing `+component` is a prefetcher only if it parses as a
//! [`PrefetcherKind`]; everything else after the first `@` belongs to the
//! machine.
//!
//! The selector is the wire-level scope of serve protocol v2, the scoping
//! argument of the trace-store query surface, and the slot-default carrier
//! of the intent parser — one type threaded through every layer.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::prefetch::PrefetcherKind;

/// A malformed selector string, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorParseError {
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for SelectorParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario selector: {}", self.reason)
    }
}

impl std::error::Error for SelectorParseError {}

/// A scenario scope: which slice of the `workload × machine × prefetcher ×
/// policy` space a query asks about. Every field optional; the default
/// selector is unscoped (matches everything).
///
/// # Grammar
///
/// The canonical text form ([`ScenarioSelector::parse`] /
/// [`std::fmt::Display`]) is
///
/// ```text
/// [workload][@machine][+prefetcher][/policy]
/// ```
///
/// with every component optional: `mcf@table2+stride4/lru`, `@small`,
/// `+stride4`, `mcf`, and the empty string are all valid. The machine slot
/// accepts a preset *name* (`table2`) or a full canonical label
/// (`table2@llc2048x16+dram160`); the prefetcher slot stores the canonical
/// [`PrefetcherKind`] label (`none`, `nextline`, `stride<N>`), and loose
/// spellings canonicalize on parse (`+stride` → `stride4`, `+next-line` →
/// `nextline`). The trace database mirrors this shape in its storage keys:
/// `<workload>_evictions_<policy>[@machine][+prefetcher]` (see the
/// tracedb crate's `TraceId`).
///
/// ```rust
/// use cachemind_sim::scenario::ScenarioSelector;
///
/// let sel = ScenarioSelector::parse("astar@table2+stride4/lru").unwrap();
/// assert_eq!(sel.workload.as_deref(), Some("astar"));
/// assert_eq!(sel.prefetcher.as_deref(), Some("stride4"));
/// assert_eq!(sel.to_string(), "astar@table2+stride4/lru");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScenarioSelector {
    /// Workload name (`mcf`).
    pub workload: Option<String>,
    /// Machine preset name (`table2`) or full canonical label
    /// (`table2@llc2048x16+dram160`).
    pub machine: Option<String>,
    /// Canonical prefetcher label (`none`, `nextline`, `stride4`).
    pub prefetcher: Option<String>,
    /// Replacement-policy name (`lru`).
    pub policy: Option<String>,
}

impl ScenarioSelector {
    /// The unscoped selector (matches every scenario).
    pub fn all() -> Self {
        ScenarioSelector::default()
    }

    /// Scopes to a workload.
    pub fn with_workload(mut self, name: impl Into<String>) -> Self {
        self.workload = Some(name.into());
        self
    }

    /// Scopes to a machine (preset name or canonical label).
    pub fn with_machine(mut self, name: impl Into<String>) -> Self {
        self.machine = Some(name.into());
        self
    }

    /// Scopes to a prefetcher, storing its canonical label.
    pub fn with_prefetcher(mut self, kind: PrefetcherKind) -> Self {
        self.prefetcher = Some(kind.label());
        self
    }

    /// Scopes to a replacement policy.
    pub fn with_policy(mut self, name: impl Into<String>) -> Self {
        self.policy = Some(name.into());
        self
    }

    /// Whether the selector pins down nothing at all.
    pub fn is_unscoped(&self) -> bool {
        self.workload.is_none()
            && self.machine.is_none()
            && self.prefetcher.is_none()
            && self.policy.is_none()
    }

    /// The machine/prefetcher half of the selector, with the trace-slot
    /// half (workload, policy) cleared — the scope to use for cross-trace
    /// scans that must still range over every workload and policy.
    pub fn machine_scope(&self) -> ScenarioSelector {
        ScenarioSelector {
            workload: None,
            machine: self.machine.clone(),
            prefetcher: self.prefetcher.clone(),
            policy: None,
        }
    }

    /// Per-field merge: fields `self` pins win, `defaults` fills the gaps.
    /// This is how an inline `@machine` in a question composes with a
    /// session-pinned selector.
    pub fn merged_over(&self, defaults: &ScenarioSelector) -> ScenarioSelector {
        ScenarioSelector {
            workload: self.workload.clone().or_else(|| defaults.workload.clone()),
            machine: self.machine.clone().or_else(|| defaults.machine.clone()),
            prefetcher: self.prefetcher.clone().or_else(|| defaults.prefetcher.clone()),
            policy: self.policy.clone().or_else(|| defaults.policy.clone()),
        }
    }

    /// Whether the selector's machine scope accepts a canonical machine
    /// label: exact match, or the selector names the preset the label was
    /// derived from (`table2` matches `table2@llc2048x16+dram160`). An
    /// unset machine accepts every label.
    pub fn matches_machine(&self, label: &str) -> bool {
        match &self.machine {
            None => true,
            Some(want) => {
                want == label
                    || label.strip_prefix(want.as_str()).is_some_and(|r| r.starts_with('@'))
            }
        }
    }

    /// Whether the selector accepts a scenario described by its four
    /// canonical components.
    pub fn matches(&self, workload: &str, machine: &str, prefetcher: &str, policy: &str) -> bool {
        self.workload.as_deref().is_none_or(|w| w == workload)
            && self.matches_machine(machine)
            && self.prefetcher.as_deref().is_none_or(|p| p == prefetcher)
            && self.policy.as_deref().is_none_or(|p| p == policy)
    }

    /// Parses the canonical text form `workload@machine+prefetcher/policy`
    /// (all components optional).
    ///
    /// Grammar, resolved right to left so machine labels may themselves
    /// contain `@` and `+`:
    ///
    /// 1. everything after the last `/` is the policy;
    /// 2. a trailing `+component` is the prefetcher *iff* it parses as a
    ///    [`PrefetcherKind`] name;
    /// 3. everything after the first `@` is the machine;
    /// 4. what remains is the workload.
    pub fn parse(text: &str) -> Result<ScenarioSelector, SelectorParseError> {
        let err = |reason: String| Err(SelectorParseError { reason });
        if text.chars().any(char::is_whitespace) {
            return err(format!("selector {text:?} must not contain whitespace"));
        }
        let mut rest = text;
        let policy = match rest.rfind('/') {
            Some(idx) => {
                let p = &rest[idx + 1..];
                if p.is_empty() {
                    return err(format!("selector {text:?} has an empty policy after '/'"));
                }
                rest = &rest[..idx];
                Some(p.to_owned())
            }
            None => None,
        };
        let prefetcher = match rest.rfind('+') {
            Some(idx) => match PrefetcherKind::parse(&rest[idx + 1..]) {
                Some(kind) => {
                    rest = &rest[..idx];
                    Some(kind.label())
                }
                // Not a prefetcher name: the '+' belongs to a machine label.
                None => None,
            },
            None => None,
        };
        let (workload, machine) = match rest.find('@') {
            Some(idx) => {
                let m = &rest[idx + 1..];
                if m.is_empty() {
                    return err(format!("selector {text:?} has an empty machine after '@'"));
                }
                let w = &rest[..idx];
                (if w.is_empty() { None } else { Some(w.to_owned()) }, Some(m.to_owned()))
            }
            None => (if rest.is_empty() { None } else { Some(rest.to_owned()) }, None),
        };
        for (slot, value) in [("workload", &workload), ("policy", &policy)] {
            if let Some(v) = value {
                if v.contains(['@', '+', '/']) {
                    return err(format!("selector {text:?} has a malformed {slot} {v:?}"));
                }
            }
        }
        // Canonical machine labels may contain '@' and '+' but never '/':
        // a slash left inside the machine means a mis-slashed selector
        // (e.g. "@table2/lru/belady"), which would otherwise be accepted
        // with a machine that can never match anything.
        if let Some(m) = &machine {
            if m.contains('/') {
                return err(format!("selector {text:?} has a malformed machine {m:?}"));
            }
        }
        Ok(ScenarioSelector { workload, machine, prefetcher, policy })
    }
}

impl fmt::Display for ScenarioSelector {
    /// Renders the canonical text form; `parse ∘ to_string` is the
    /// identity on selectors holding canonical component labels.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(w) = &self.workload {
            write!(f, "{w}")?;
        }
        if let Some(m) = &self.machine {
            write!(f, "@{m}")?;
        }
        if let Some(p) = &self.prefetcher {
            write!(f, "+{p}")?;
        }
        if let Some(p) = &self.policy {
            write!(f, "/{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sel: &ScenarioSelector) {
        let text = sel.to_string();
        let back = ScenarioSelector::parse(&text).expect("canonical form parses");
        assert_eq!(&back, sel, "round-trip through {text:?}");
    }

    #[test]
    fn parses_every_component_combination() {
        let full = ScenarioSelector::parse("mcf@table2+stride4/lru").unwrap();
        assert_eq!(full.workload.as_deref(), Some("mcf"));
        assert_eq!(full.machine.as_deref(), Some("table2"));
        assert_eq!(full.prefetcher.as_deref(), Some("stride4"));
        assert_eq!(full.policy.as_deref(), Some("lru"));
        roundtrip(&full);

        assert_eq!(
            ScenarioSelector::parse("mcf").unwrap(),
            ScenarioSelector::all().with_workload("mcf")
        );
        assert_eq!(
            ScenarioSelector::parse("@small").unwrap(),
            ScenarioSelector::all().with_machine("small")
        );
        assert_eq!(
            ScenarioSelector::parse("+nextline").unwrap(),
            ScenarioSelector::all().with_prefetcher(PrefetcherKind::NextLine)
        );
        assert_eq!(
            ScenarioSelector::parse("/belady").unwrap(),
            ScenarioSelector::all().with_policy("belady")
        );
        assert_eq!(ScenarioSelector::parse("").unwrap(), ScenarioSelector::all());
        assert!(ScenarioSelector::parse("").unwrap().is_unscoped());
    }

    #[test]
    fn machine_labels_containing_delimiters_parse_whole() {
        let sel = ScenarioSelector::parse("mcf@table2@llc2048x16+dram160/lru").unwrap();
        assert_eq!(sel.machine.as_deref(), Some("table2@llc2048x16+dram160"));
        assert_eq!(sel.prefetcher, None, "dram160 is not a prefetcher name");
        roundtrip(&sel);

        let sel = ScenarioSelector::parse("@table2@llc2048x16+dram160+stride2").unwrap();
        assert_eq!(sel.machine.as_deref(), Some("table2@llc2048x16+dram160"));
        assert_eq!(sel.prefetcher.as_deref(), Some("stride2"));
        roundtrip(&sel);
    }

    #[test]
    fn loose_prefetcher_spellings_canonicalize() {
        let sel = ScenarioSelector::parse("+stride").unwrap();
        assert_eq!(sel.prefetcher.as_deref(), Some("stride4"), "default degree");
        let sel = ScenarioSelector::parse("+next-line").unwrap();
        assert_eq!(sel.prefetcher.as_deref(), Some("nextline"));
        roundtrip(&sel);
    }

    #[test]
    fn malformed_selectors_are_rejected() {
        for bad in ["mcf@", "mcf/", "a b", "x+y@z", "mcf@table2/l/ru@x", "@table2/lru/belady"] {
            assert!(ScenarioSelector::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = ScenarioSelector::parse("mcf@").unwrap_err();
        assert!(err.to_string().contains("empty machine"), "{err}");
        let err = ScenarioSelector::parse("@table2/lru/belady").unwrap_err();
        assert!(err.to_string().contains("malformed machine"), "{err}");
    }

    #[test]
    fn machine_matching_accepts_names_and_labels() {
        let by_name = ScenarioSelector::all().with_machine("table2");
        assert!(by_name.matches_machine("table2@llc2048x16+dram160"));
        assert!(by_name.matches_machine("table2"));
        assert!(!by_name.matches_machine("table2x@llc2048x16+dram160"));
        assert!(!by_name.matches_machine("small@llc1024x4+dram160"));

        let by_label = ScenarioSelector::all().with_machine("table2@llc2048x16+dram160");
        assert!(by_label.matches_machine("table2@llc2048x16+dram160"));
        assert!(!by_label.matches_machine("table2@llc2048x16+dram400"));

        assert!(ScenarioSelector::all().matches_machine("anything"));
    }

    #[test]
    fn merge_prefers_self_and_fills_from_defaults() {
        let inline = ScenarioSelector::all().with_machine("small");
        let pinned = ScenarioSelector::all().with_machine("table2").with_policy("lru");
        let merged = inline.merged_over(&pinned);
        assert_eq!(merged.machine.as_deref(), Some("small"), "inline wins");
        assert_eq!(merged.policy.as_deref(), Some("lru"), "defaults fill gaps");
        assert_eq!(merged.workload, None);
    }

    #[test]
    fn machine_scope_drops_trace_slots() {
        let sel = ScenarioSelector::parse("mcf@table2+stride4/lru").unwrap();
        let scope = sel.machine_scope();
        assert_eq!(scope.workload, None);
        assert_eq!(scope.policy, None);
        assert_eq!(scope.machine.as_deref(), Some("table2"));
        assert_eq!(scope.prefetcher.as_deref(), Some("stride4"));
    }

    #[test]
    fn matches_filters_on_every_axis() {
        let sel = ScenarioSelector::parse("mcf@table2/lru").unwrap();
        assert!(sel.matches("mcf", "table2@llc2048x16+dram160", "none", "lru"));
        assert!(!sel.matches("lbm", "table2@llc2048x16+dram160", "none", "lru"));
        assert!(!sel.matches("mcf", "small@llc1024x4+dram160", "none", "lru"));
        assert!(!sel.matches("mcf", "table2@llc2048x16+dram160", "none", "belady"));
        let pf = ScenarioSelector::all().with_prefetcher(PrefetcherKind::NextLine);
        assert!(pf.matches("mcf", "anything", "nextline", "lru"));
        assert!(!pf.matches("mcf", "anything", "none", "lru"));
    }
}
