//! The multi-level hierarchy: filters a workload's access stream down to the
//! LLC stream that replacement-policy studies replay.
//!
//! Mirrors the paper's methodology (§5): the full hierarchy is simulated once
//! (L1/L2 under LRU, per Table 2), the LLC access stream is captured, and
//! each studied replacement policy then *replays* that identical stream so
//! policies are compared on the same inputs.

use serde::{Deserialize, Serialize};

use crate::access::{AccessKind, MemoryAccess};
use crate::addr::{Address, LineAddr};
use crate::config::{CacheConfig, HierarchyConfig};
use crate::stats::CacheStats;

/// Result of running a workload through the hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HierarchyReport {
    /// Accesses that reached the LLC, in order.
    pub llc_stream: Vec<MemoryAccess>,
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// LLC counters under the baseline (LRU) policy.
    pub llc: CacheStats,
    /// Prefetch accesses that filled a line anywhere in the hierarchy
    /// (prefetches that missed L1D).
    pub prefetch_fills: u64,
    /// Demand accesses served from a line a prefetch brought in — at
    /// whatever level the demand found it (L1 hit on a freshly-prefetched
    /// line, or an L2/LLC hit after the L1 copy was evicted).
    pub useful_prefetches: u64,
    /// Total dynamic instructions in the workload.
    pub instr_count: u64,
}

impl HierarchyReport {
    /// Demand misses that had to go to DRAM under the baseline LLC policy.
    pub fn dram_accesses(&self) -> u64 {
        self.llc.demand_misses
    }
}

/// Sentinel tag marking an invalid way (same convention as the main
/// [`crate::cache::SetAssociativeCache`] storage).
const INVALID_TAG: LineAddr = LineAddr::new(u64::MAX);

/// What one filter-cache access produced: a hit flag plus the evicted line,
/// the only outcome data the hierarchy filter consumes.
struct FilterOutcome {
    hit: bool,
    evicted: Option<LineAddr>,
}

/// A stripped-down LRU cache level for the hierarchy filter.
///
/// The filter replays every workload access through L1/L2 (and the LLC for
/// the baseline counters) under plain LRU, and only ever reads the
/// hit/miss counters and the evicted line address — never per-line PCs,
/// insertion indices or dirty bits. This lean twin of
/// [`crate::cache::SetAssociativeCache`] therefore keeps just the tag and
/// last-touch columns, halving the per-access work of the hottest loop in
/// sweep stage 1 while making *identical* hit/fill/evict decisions:
///
/// * hit  = first way whose tag matches (same probe order);
/// * fill = first invalid way — ways fill in index order, so the `filled`
///   counter names the same way the invalid-tag scan would find;
/// * victim = the valid way with the smallest `last_touch`, first such way
///   on (impossible) ties — exactly `RecencyPolicy::lru`'s `min_by_key`.
#[derive(Debug)]
struct FilterCache {
    line_size_log2: u32,
    sets_log2: u32,
    ways: usize,
    tags: Vec<LineAddr>,
    last_touch: Vec<u64>,
    /// Valid-way count per set. Fills always claim the lowest-index
    /// invalid way and evictions replace in place, so the first invalid
    /// way *is* the fill count — tracking it skips the invalid-tag scan
    /// on every cold miss.
    filled: Vec<u16>,
    stats: CacheStats,
}

impl FilterCache {
    fn new(config: &CacheConfig) -> Self {
        let capacity = config.capacity_lines();
        FilterCache {
            line_size_log2: config.line_size_log2,
            sets_log2: config.sets_log2,
            ways: config.ways,
            tags: vec![INVALID_TAG; capacity],
            last_touch: vec![0; capacity],
            filled: vec![0; 1 << config.sets_log2],
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn access(&mut self, index: u64, address: Address, kind: AccessKind) -> FilterOutcome {
        // Tags are full line addresses (matching the policy-facing cache,
        // which stores `AccessContext::line`); the set index masks the low
        // line-address bits.
        let line = address.line(self.line_size_log2);
        let set = line.set(self.sets_log2);
        let base = set.index() * self.ways;
        // Only `filled` ways hold valid tags; the scan never needs to look
        // past them (fills claim ways in index order, see `filled`).
        let filled = self.filled[set.index()] as usize;
        let set_tags = &mut self.tags[base..base + filled];

        if let Some(way) = set_tags.iter().position(|&tag| tag == line) {
            self.last_touch[base + way] = index;
            self.stats.record_hit(kind);
            return FilterOutcome { hit: true, evicted: None };
        }

        self.stats.record_miss(kind);
        if filled < self.ways {
            self.tags[base + filled] = line;
            self.last_touch[base + filled] = index;
            self.filled[set.index()] = filled as u16 + 1;
            return FilterOutcome { hit: false, evicted: None };
        }

        // LRU victim: first way with the minimal last touch, as
        // `min_by_key` over ways in order would pick.
        let touches = &self.last_touch[base..base + self.ways];
        let mut victim = 0;
        for (way, &touch) in touches.iter().enumerate().skip(1) {
            if touch < touches[victim] {
                victim = way;
            }
        }
        let evicted = set_tags[victim];
        set_tags[victim] = line;
        self.last_touch[base + victim] = index;
        self.stats.evictions += 1;
        FilterOutcome { hit: false, evicted: Some(evicted) }
    }
}

/// The three-level cache hierarchy of Table 2.
///
/// # Example
///
/// ```rust
/// use cachemind_sim::prelude::*;
///
/// let mut hierarchy = CacheHierarchy::new(HierarchyConfig::small());
/// let accesses = vec![
///     MemoryAccess::load(Pc::new(0x400100), Address::new(0x10000), 0),
///     MemoryAccess::load(Pc::new(0x400100), Address::new(0x10000), 1),
/// ];
/// let report = hierarchy.run(&accesses, 2);
/// assert_eq!(report.llc_stream.len(), 1); // second access hit in L1D
/// ```
#[derive(Debug)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1i: FilterCache,
    l1d: FilterCache,
    l2: FilterCache,
    llc: FilterCache,
}

impl CacheHierarchy {
    /// Creates an empty hierarchy with LRU at every level.
    pub fn new(config: HierarchyConfig) -> Self {
        CacheHierarchy {
            l1i: FilterCache::new(&config.l1i),
            l1d: FilterCache::new(&config.l1d),
            l2: FilterCache::new(&config.l2),
            llc: FilterCache::new(&config.llc),
            config,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Runs the access stream through the hierarchy and captures the LLC
    /// stream. `instr_count` is the total dynamic instruction count of the
    /// workload (used by the IPC model).
    pub fn run(&mut self, accesses: &[MemoryAccess], instr_count: u64) -> HierarchyReport {
        // Worst case every access reaches the LLC; reserving up front
        // avoids the log2(n) reallocation-and-copy ladder on workloads
        // (like mcf) where most of the stream really does get there.
        let mut llc_stream = Vec::with_capacity(accesses.len());
        // Prefetch-usefulness bookkeeping: lines a prefetch brought into
        // the hierarchy that no demand access has touched yet. A line
        // leaves the set when a demand access is served from it (useful)
        // or when the LLC copy — the last one standing — is evicted.
        // Keyed in the LLC's line space so eviction keys (LLC `LineAddr`
        // values) and access keys always agree, whatever the L1 line size.
        let line_bits = self.config.llc.line_size_log2;
        let mut prefetched: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut prefetch_fills = 0u64;
        let mut useful_prefetches = 0u64;
        for (i, access) in accesses.iter().enumerate() {
            let idx = i as u64;
            let line = access.address.value() >> line_bits;
            let is_prefetch = access.kind == AccessKind::Prefetch;
            // A pending line only becomes *useful* if this demand access is
            // actually served from it (a hit at some level); a demand miss
            // on a stale pending line is a wasted prefetch either way. The
            // emptiness guard keeps prefetcher-free streams from paying a
            // hash probe on every access.
            let was_pending = !is_prefetch && !prefetched.is_empty() && prefetched.remove(&line);
            let l1 = match access.kind {
                AccessKind::Fetch => &mut self.l1i,
                _ => &mut self.l1d,
            };
            let l1_out = l1.access(idx, access.address, access.kind);
            if l1_out.hit {
                if was_pending {
                    useful_prefetches += 1;
                }
                continue;
            }
            if is_prefetch {
                prefetch_fills += 1;
                prefetched.insert(line);
            }
            let l2_out = self.l2.access(idx, access.address, access.kind);
            if l2_out.hit {
                if was_pending {
                    useful_prefetches += 1;
                }
                continue;
            }
            // The access reaches the LLC; this is the stream that policy
            // replays consume.
            llc_stream.push(*access);
            let llc_out = self.llc.access(idx, access.address, access.kind);
            if llc_out.hit && was_pending {
                useful_prefetches += 1;
            }
            if let Some(evicted) = llc_out.evicted {
                if !prefetched.is_empty() {
                    prefetched.remove(&evicted.value());
                }
            }
        }
        HierarchyReport {
            llc_stream,
            l1i: self.l1i.stats,
            l1d: self.l1d.stats,
            l2: self.l2.stats,
            llc: self.llc.stats,
            prefetch_fills,
            useful_prefetches,
            instr_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Address, Pc};

    fn loads(addrs: &[u64]) -> Vec<MemoryAccess> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| MemoryAccess::load(Pc::new(0x400000), Address::new(a), i as u64))
            .collect()
    }

    #[test]
    fn l1_filters_hot_lines() {
        let mut h = CacheHierarchy::new(HierarchyConfig::small());
        let report = h.run(&loads(&[0x1000, 0x1000, 0x1000, 0x1000]), 4);
        assert_eq!(report.l1d.accesses, 4);
        assert_eq!(report.l1d.misses, 1);
        assert_eq!(report.llc_stream.len(), 1);
    }

    #[test]
    fn fetches_go_through_l1i() {
        let mut h = CacheHierarchy::new(HierarchyConfig::small());
        let a = MemoryAccess::fetch(Pc::new(0x400000), Address::new(0x400000), 0);
        let report = h.run(&[a, a], 2);
        assert_eq!(report.l1i.accesses, 2);
        assert_eq!(report.l1d.accesses, 0);
    }

    #[test]
    fn prefetches_flow_through_the_data_path() {
        let mut h = CacheHierarchy::new(HierarchyConfig::small());
        let pf = MemoryAccess::prefetch(Pc::new(0x400000), Address::new(0x9000), 0);
        let ld = MemoryAccess::load(Pc::new(0x400000), Address::new(0x9000), 1);
        let report = h.run(&[pf, ld], 2);
        // The prefetch warms L1D, so the demand load hits and never reaches
        // the LLC.
        assert_eq!(report.l1d.accesses, 2);
        assert_eq!(report.l1d.hits, 1);
        assert_eq!(report.llc_stream.len(), 1);
    }

    #[test]
    fn prefetch_usefulness_counts_served_demands_only() {
        let mut h = CacheHierarchy::new(HierarchyConfig::small());
        let pf_used = MemoryAccess::prefetch(Pc::new(0x400000), Address::new(0x9000), 0);
        let ld_hit = MemoryAccess::load(Pc::new(0x400000), Address::new(0x9000), 1);
        let pf_wasted = MemoryAccess::prefetch(Pc::new(0x400000), Address::new(0xA000), 2);
        let ld_cold = MemoryAccess::load(Pc::new(0x400000), Address::new(0xB000), 3);
        let report = h.run(&[pf_used, ld_hit, pf_wasted, ld_cold], 4);
        assert_eq!(report.prefetch_fills, 2);
        // Only the load served from the prefetched 0x9000 line is useful:
        // 0xA000 was never demanded and 0xB000 was a plain cold miss.
        assert_eq!(report.useful_prefetches, 1);
    }

    #[test]
    fn streaming_reaches_llc() {
        let mut h = CacheHierarchy::new(HierarchyConfig::small());
        // 4096 distinct lines: far beyond the small L1/L2, every access
        // reaches the LLC.
        let addrs: Vec<u64> = (0..4096u64).map(|i| i * 64).collect();
        let report = h.run(&loads(&addrs), 4096);
        assert_eq!(report.llc_stream.len(), 4096);
        assert!(report.llc.misses > 0);
    }
}
