//! A single set-associative cache level.
//!
//! Storage is structure-of-arrays: one contiguous tag array (`Vec<LineAddr>`,
//! invalid ways marked by a sentinel) is probed on every access, and the
//! per-way metadata (`last_pc`/`insert_pc`/`inserted_at`/`last_touch`/`dirty`)
//! lives in parallel arrays that are only touched after a tag match. The hot
//! probe loop therefore walks `ways` consecutive `u64`s instead of
//! `ways × sizeof(Option<LineMeta>)` bytes, which is what makes the replay
//! loop memory-bandwidth-friendly (see `docs/PERFORMANCE.md`).
//!
//! Replacement policies observe a set through the borrowed [`SetView`]
//! adapter rather than a `&[Option<LineMeta>]` slice; tests and policies
//! that need to fabricate a set directly use the owned [`SetViewBuf`].

use serde::{Deserialize, Serialize};

use crate::addr::{Address, LineAddr, Pc, SetId};
use crate::config::CacheConfig;
use crate::replacement::{AccessContext, Decision, ReplacementPolicy};
use crate::stats::CacheStats;

/// Sentinel tag marking an invalid way. Unreachable as a real tag: a line
/// address is a byte address shifted right by `line_size_log2 >= 1`, so its
/// top bit is always clear.
const INVALID_TAG: LineAddr = LineAddr::new(u64::MAX);

/// Metadata for one resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineMeta {
    /// The resident line address.
    pub line: LineAddr,
    /// PC of the access that most recently touched the line.
    pub last_pc: Pc,
    /// PC of the access that inserted the line.
    pub insert_pc: Pc,
    /// Stream index of the inserting access.
    pub inserted_at: u64,
    /// Stream index of the most recent touch.
    pub last_touch: u64,
    /// Whether the line is dirty (stores only; informational).
    pub dirty: bool,
}

/// A borrowed view of one cache set in the structure-of-arrays layout —
/// what replacement policies inspect in place of the former
/// `&[Option<LineMeta>]` slice.
///
/// Way `w` is valid iff [`SetView::is_valid`] returns true; the per-way
/// accessors return raw column values and must only be read for valid ways
/// (invalid ways carry the tag sentinel and zeroed metadata).
#[derive(Debug, Clone, Copy)]
pub struct SetView<'a> {
    tags: &'a [LineAddr],
    last_pc: &'a [Pc],
    insert_pc: &'a [Pc],
    inserted_at: &'a [u64],
    last_touch: &'a [u64],
    dirty: &'a [bool],
}

impl<'a> SetView<'a> {
    /// Number of ways in the set.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the set has zero ways (never true for a real geometry).
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Whether way `way` holds a valid line.
    pub fn is_valid(&self, way: usize) -> bool {
        self.tags[way] != INVALID_TAG
    }

    /// The resident line address of way `way`, if valid.
    pub fn line(&self, way: usize) -> Option<LineAddr> {
        (self.tags[way] != INVALID_TAG).then(|| self.tags[way])
    }

    /// PC of the most recent touch of way `way` (valid ways only).
    pub fn last_pc(&self, way: usize) -> Pc {
        self.last_pc[way]
    }

    /// PC of the access that inserted way `way` (valid ways only).
    pub fn insert_pc(&self, way: usize) -> Pc {
        self.insert_pc[way]
    }

    /// Stream index of the inserting access of way `way` (valid ways only).
    pub fn inserted_at(&self, way: usize) -> u64 {
        self.inserted_at[way]
    }

    /// Stream index of the most recent touch of way `way` (valid ways only).
    pub fn last_touch(&self, way: usize) -> u64 {
        self.last_touch[way]
    }

    /// Whether way `way` is dirty (valid ways only).
    pub fn dirty(&self, way: usize) -> bool {
        self.dirty[way]
    }

    /// Iterates `(way, line)` over the valid ways.
    pub fn iter_valid(&self) -> impl Iterator<Item = (usize, LineAddr)> + 'a {
        self.tags.iter().copied().enumerate().filter(|&(_, tag)| tag != INVALID_TAG)
    }

    /// Materialises the [`LineMeta`] of way `way`, if valid — the bridge
    /// back to the AoS representation for record emission and tests.
    pub fn meta(&self, way: usize) -> Option<LineMeta> {
        (self.tags[way] != INVALID_TAG).then(|| LineMeta {
            line: self.tags[way],
            last_pc: self.last_pc[way],
            insert_pc: self.insert_pc[way],
            inserted_at: self.inserted_at[way],
            last_touch: self.last_touch[way],
            dirty: self.dirty[way],
        })
    }
}

/// An owned one-set buffer in the structure-of-arrays layout, for policy
/// unit tests (and reference implementations) that fabricate a set without
/// a whole cache. [`SetViewBuf::view`] lends it as a [`SetView`].
#[derive(Debug, Clone)]
pub struct SetViewBuf {
    tags: Vec<LineAddr>,
    last_pc: Vec<Pc>,
    insert_pc: Vec<Pc>,
    inserted_at: Vec<u64>,
    last_touch: Vec<u64>,
    dirty: Vec<bool>,
}

impl SetViewBuf {
    /// An all-invalid set with `ways` ways.
    pub fn new(ways: usize) -> Self {
        SetViewBuf {
            tags: vec![INVALID_TAG; ways],
            last_pc: vec![Pc::new(0); ways],
            insert_pc: vec![Pc::new(0); ways],
            inserted_at: vec![0; ways],
            last_touch: vec![0; ways],
            dirty: vec![false; ways],
        }
    }

    /// Builds the buffer from the former AoS shape (one slot per way).
    pub fn from_metas(slots: &[Option<LineMeta>]) -> Self {
        let mut buf = SetViewBuf::new(slots.len());
        for (way, slot) in slots.iter().enumerate() {
            if let Some(meta) = slot {
                buf.set(way, *meta);
            }
        }
        buf
    }

    /// Makes way `way` valid with the given metadata.
    pub fn set(&mut self, way: usize, meta: LineMeta) {
        self.tags[way] = meta.line;
        self.last_pc[way] = meta.last_pc;
        self.insert_pc[way] = meta.insert_pc;
        self.inserted_at[way] = meta.inserted_at;
        self.last_touch[way] = meta.last_touch;
        self.dirty[way] = meta.dirty;
    }

    /// Invalidates way `way`.
    pub fn clear(&mut self, way: usize) {
        self.tags[way] = INVALID_TAG;
    }

    /// Lends the buffer as a [`SetView`].
    pub fn view(&self) -> SetView<'_> {
        SetView {
            tags: &self.tags,
            last_pc: &self.last_pc,
            insert_pc: &self.insert_pc,
            inserted_at: &self.inserted_at,
            last_touch: &self.last_touch,
            dirty: &self.dirty,
        }
    }
}

/// The outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// The way that was hit or filled (`None` when the fill was bypassed).
    pub way: Option<usize>,
    /// Line evicted to make room, if any.
    pub evicted: Option<LineMeta>,
    /// Whether the policy chose to bypass the fill.
    pub bypassed: bool,
}

/// A set-associative cache parameterised over its replacement policy.
///
/// # Example
///
/// ```rust
/// use cachemind_sim::prelude::*;
///
/// let mut cache = SetAssociativeCache::new(CacheConfig::small_llc(), RecencyPolicy::lru());
/// let a = MemoryAccess::load(Pc::new(0x400100), Address::new(0x8000), 0);
/// let set = cache.set_of(a.address);
/// let out = cache.access(&AccessContext::demand(0, &a, set));
/// assert!(!out.hit);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssociativeCache<P> {
    config: CacheConfig,
    ways: usize,
    tags: Vec<LineAddr>,
    last_pc: Vec<Pc>,
    insert_pc: Vec<Pc>,
    inserted_at: Vec<u64>,
    last_touch: Vec<u64>,
    dirty: Vec<bool>,
    policy: P,
    stats: CacheStats,
}

/// Builds a [`SetView`] over the cache's columns for `range` — a free
/// function (rather than a `&self` method) so `access` can hold the view
/// while calling `&mut self.policy`: the borrow checker sees the disjoint
/// field borrows.
fn view_columns<'a>(
    tags: &'a [LineAddr],
    last_pc: &'a [Pc],
    insert_pc: &'a [Pc],
    inserted_at: &'a [u64],
    last_touch: &'a [u64],
    dirty: &'a [bool],
    range: std::ops::Range<usize>,
) -> SetView<'a> {
    SetView {
        tags: &tags[range.clone()],
        last_pc: &last_pc[range.clone()],
        insert_pc: &insert_pc[range.clone()],
        inserted_at: &inserted_at[range.clone()],
        last_touch: &last_touch[range.clone()],
        dirty: &dirty[range],
    }
}

impl<P: ReplacementPolicy> SetAssociativeCache<P> {
    /// Creates an empty cache with the given geometry and policy.
    pub fn new(config: CacheConfig, policy: P) -> Self {
        let capacity = config.capacity_lines();
        let ways = config.ways;
        SetAssociativeCache {
            config,
            ways,
            tags: vec![INVALID_TAG; capacity],
            last_pc: vec![Pc::new(0); capacity],
            insert_pc: vec![Pc::new(0); capacity],
            inserted_at: vec![0; capacity],
            last_touch: vec![0; capacity],
            dirty: vec![false; capacity],
            policy,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Aggregate hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The replacement policy (shared access).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The replacement policy (exclusive access, e.g. to reconfigure a
    /// bypass list between runs).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// The set an address maps to.
    pub fn set_of(&self, address: Address) -> SetId {
        self.config.set_of(address)
    }

    /// The set a line address maps to.
    pub fn set_of_line(&self, line: LineAddr) -> SetId {
        line.set(self.config.sets_log2)
    }

    /// A borrowed view of the ways of `set`.
    pub fn set_view(&self, set: SetId) -> SetView<'_> {
        view_columns(
            &self.tags,
            &self.last_pc,
            &self.insert_pc,
            &self.inserted_at,
            &self.last_touch,
            &self.dirty,
            self.set_range(set),
        )
    }

    /// The policy's current per-way eviction scores for `set`.
    pub fn line_scores(&self, set: SetId, now: u64) -> Vec<u64> {
        self.policy.line_scores(set, self.set_view(set), now)
    }

    /// Allocation-free variant of [`SetAssociativeCache::line_scores`]:
    /// clears `out` and appends one score per way. The replay hot loop
    /// reuses one buffer across every access instead of allocating a fresh
    /// `Vec` per record.
    pub fn line_scores_into(&self, set: SetId, now: u64, out: &mut Vec<u64>) {
        self.policy.line_scores_into(set, self.set_view(set), now, out);
    }

    /// Whether `line` is currently resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = self.set_of_line(line);
        let range = self.set_range(set);
        self.tags[range].contains(&line)
    }

    fn set_range(&self, set: SetId) -> std::ops::Range<usize> {
        let base = set.index() * self.ways;
        base..base + self.ways
    }

    fn meta_at(&self, slot: usize) -> LineMeta {
        LineMeta {
            line: self.tags[slot],
            last_pc: self.last_pc[slot],
            insert_pc: self.insert_pc[slot],
            inserted_at: self.inserted_at[slot],
            last_touch: self.last_touch[slot],
            dirty: self.dirty[slot],
        }
    }

    fn write_meta(&mut self, slot: usize, meta: LineMeta) {
        self.tags[slot] = meta.line;
        self.last_pc[slot] = meta.last_pc;
        self.insert_pc[slot] = meta.insert_pc;
        self.inserted_at[slot] = meta.inserted_at;
        self.last_touch[slot] = meta.last_touch;
        self.dirty[slot] = meta.dirty;
    }

    /// Performs one access, consulting the replacement policy on misses.
    ///
    /// The caller provides the [`AccessContext`] (so a replay driver can
    /// attach oracle information); `ctx.set` must equal
    /// `self.set_of_line(ctx.line)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `ctx.set` is inconsistent with `ctx.line`.
    pub fn access(&mut self, ctx: &AccessContext) -> AccessOutcome {
        debug_assert_eq!(
            ctx.set,
            self.set_of_line(ctx.line),
            "AccessContext.set disagrees with the cache geometry"
        );
        debug_assert_ne!(ctx.line, INVALID_TAG, "accessed line collides with the invalid sentinel");
        let range = self.set_range(ctx.set);
        let ways = self.ways;
        let is_store = matches!(ctx.kind, crate::access::AccessKind::Store);

        // Hit path: probe the contiguous tag array only; metadata columns
        // are touched after the match.
        let set_tags = &self.tags[range.clone()];
        if let Some(way) = set_tags.iter().position(|&tag| tag == ctx.line) {
            let slot = range.start + way;
            self.last_touch[slot] = ctx.index;
            self.last_pc[slot] = ctx.pc;
            self.dirty[slot] |= is_store;
            let view = view_columns(
                &self.tags,
                &self.last_pc,
                &self.insert_pc,
                &self.inserted_at,
                &self.last_touch,
                &self.dirty,
                range,
            );
            self.policy.on_hit(way, view, ctx);
            self.stats.record_hit(ctx.kind);
            return AccessOutcome { hit: true, way: Some(way), evicted: None, bypassed: false };
        }

        // Miss path: fill an invalid way if one exists.
        self.stats.record_miss(ctx.kind);
        let fill = LineMeta {
            line: ctx.line,
            last_pc: ctx.pc,
            insert_pc: ctx.pc,
            inserted_at: ctx.index,
            last_touch: ctx.index,
            dirty: is_store,
        };
        if let Some(way) = self.tags[range.clone()].iter().position(|&tag| tag == INVALID_TAG) {
            self.write_meta(range.start + way, fill);
            let view = view_columns(
                &self.tags,
                &self.last_pc,
                &self.insert_pc,
                &self.inserted_at,
                &self.last_touch,
                &self.dirty,
                range,
            );
            self.policy.on_fill(way, view, ctx);
            return AccessOutcome { hit: false, way: Some(way), evicted: None, bypassed: false };
        }

        // Full set: ask the policy.
        let decision = {
            let view = view_columns(
                &self.tags,
                &self.last_pc,
                &self.insert_pc,
                &self.inserted_at,
                &self.last_touch,
                &self.dirty,
                range.clone(),
            );
            self.policy.choose_victim(view, ctx)
        };
        match decision {
            Decision::Bypass => {
                self.stats.bypasses += 1;
                AccessOutcome { hit: false, way: None, evicted: None, bypassed: true }
            }
            Decision::Evict(way) => {
                assert!(way < ways, "policy returned out-of-range way {way}");
                let slot = range.start + way;
                let evicted = self.meta_at(slot);
                self.write_meta(slot, fill);
                self.stats.evictions += 1;
                let view = view_columns(
                    &self.tags,
                    &self.last_pc,
                    &self.insert_pc,
                    &self.inserted_at,
                    &self.last_touch,
                    &self.dirty,
                    range,
                );
                self.policy.on_fill(way, view, ctx);
                AccessOutcome {
                    hit: false,
                    way: Some(way),
                    evicted: Some(evicted),
                    bypassed: false,
                }
            }
        }
    }

    /// Invalidates `line` if resident, returning its metadata.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineMeta> {
        let set = self.set_of_line(line);
        let range = self.set_range(set);
        if let Some(way) = self.tags[range.clone()].iter().position(|&tag| tag == line) {
            let slot = range.start + way;
            let meta = self.meta_at(slot);
            self.tags[slot] = INVALID_TAG;
            return Some(meta);
        }
        None
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&tag| tag != INVALID_TAG).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::MemoryAccess;
    use crate::replacement::RecencyPolicy;

    fn lru_cache(sets_log2: u32, ways: usize) -> SetAssociativeCache<RecencyPolicy> {
        SetAssociativeCache::new(CacheConfig::new("t", sets_log2, ways, 6), RecencyPolicy::lru())
    }

    fn go(cache: &mut SetAssociativeCache<RecencyPolicy>, addr: u64, idx: u64) -> AccessOutcome {
        let a = MemoryAccess::load(Pc::new(0x400000 + idx), Address::new(addr), idx);
        let set = cache.set_of(a.address);
        cache.access(&AccessContext::demand(idx, &a, set))
    }

    #[test]
    fn repeated_access_hits() {
        let mut cache = lru_cache(2, 2);
        assert!(!go(&mut cache, 0x40, 0).hit);
        assert!(go(&mut cache, 0x40, 1).hit);
        assert!(go(&mut cache, 0x7f, 2).hit, "same line, different offset");
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn eviction_reports_victim() {
        let mut cache = lru_cache(0, 1);
        assert!(!go(&mut cache, 0x000, 0).hit);
        let out = go(&mut cache, 0x040, 1);
        assert!(!out.hit);
        let evicted = out.evicted.expect("direct-mapped eviction");
        assert_eq!(evicted.line, Address::new(0x000).line(6));
    }

    #[test]
    fn occupancy_tracks_fills_and_invalidations() {
        let mut cache = lru_cache(1, 2);
        go(&mut cache, 0x000, 0);
        go(&mut cache, 0x040, 1);
        assert_eq!(cache.occupancy(), 2);
        assert!(cache.invalidate(Address::new(0x000).line(6)).is_some());
        assert_eq!(cache.occupancy(), 1);
        assert!(cache.invalidate(Address::new(0x000).line(6)).is_none());
    }

    #[test]
    fn store_marks_dirty() {
        let mut cache = lru_cache(1, 2);
        let a = MemoryAccess::store(Pc::new(1), Address::new(0x80), 0);
        let set = cache.set_of(a.address);
        cache.access(&AccessContext::demand(0, &a, set));
        let line = a.address.line(6);
        let view = cache.set_view(cache.set_of_line(line));
        let meta = (0..view.len())
            .filter_map(|w| view.meta(w))
            .find(|m| m.line == line)
            .expect("stored line resident");
        assert!(meta.dirty);
    }

    #[test]
    fn contains_reflects_residency() {
        let mut cache = lru_cache(2, 2);
        let line = Address::new(0x1000).line(6);
        assert!(!cache.contains(line));
        go(&mut cache, 0x1000, 0);
        assert!(cache.contains(line));
    }

    #[test]
    fn set_view_buf_round_trips_metas() {
        let meta = LineMeta {
            line: LineAddr::new(7),
            last_pc: Pc::new(0x42),
            insert_pc: Pc::new(0x43),
            inserted_at: 5,
            last_touch: 9,
            dirty: true,
        };
        let buf = SetViewBuf::from_metas(&[None, Some(meta)]);
        let view = buf.view();
        assert!(!view.is_valid(0));
        assert_eq!(view.meta(0), None);
        assert_eq!(view.meta(1), Some(meta));
        assert_eq!(view.iter_valid().collect::<Vec<_>>(), vec![(1, LineAddr::new(7))]);
    }

    /// Failure injection: a buggy policy returning an out-of-range way must
    /// be caught by the cache, not corrupt adjacent sets.
    #[test]
    #[should_panic(expected = "out-of-range way")]
    fn malicious_policy_is_rejected() {
        #[derive(Debug)]
        struct Evil;
        impl crate::replacement::ReplacementPolicy for Evil {
            fn name(&self) -> &'static str {
                "evil"
            }
            fn on_hit(&mut self, _: usize, _: SetView<'_>, _: &AccessContext) {}
            fn choose_victim(
                &mut self,
                lines: SetView<'_>,
                _: &AccessContext,
            ) -> crate::replacement::Decision {
                crate::replacement::Decision::Evict(lines.len() + 7)
            }
            fn on_fill(&mut self, _: usize, _: SetView<'_>, _: &AccessContext) {}
        }
        let mut cache = SetAssociativeCache::new(CacheConfig::new("t", 0, 1, 6), Evil);
        for (i, addr) in [0u64, 64].iter().enumerate() {
            let a = MemoryAccess::load(Pc::new(1), Address::new(*addr), i as u64);
            let set = cache.set_of(a.address);
            let _ = cache.access(&AccessContext::demand(i as u64, &a, set));
        }
    }
}
