//! A single set-associative cache level.

use serde::{Deserialize, Serialize};

use crate::addr::{Address, LineAddr, Pc, SetId};
use crate::config::CacheConfig;
use crate::replacement::{AccessContext, Decision, ReplacementPolicy};
use crate::stats::CacheStats;

/// Metadata for one resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineMeta {
    /// The resident line address.
    pub line: LineAddr,
    /// PC of the access that most recently touched the line.
    pub last_pc: Pc,
    /// PC of the access that inserted the line.
    pub insert_pc: Pc,
    /// Stream index of the inserting access.
    pub inserted_at: u64,
    /// Stream index of the most recent touch.
    pub last_touch: u64,
    /// Whether the line is dirty (stores only; informational).
    pub dirty: bool,
}

/// The outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// The way that was hit or filled (`None` when the fill was bypassed).
    pub way: Option<usize>,
    /// Line evicted to make room, if any.
    pub evicted: Option<LineMeta>,
    /// Whether the policy chose to bypass the fill.
    pub bypassed: bool,
}

/// A set-associative cache parameterised over its replacement policy.
///
/// # Example
///
/// ```rust
/// use cachemind_sim::prelude::*;
///
/// let mut cache = SetAssociativeCache::new(CacheConfig::small_llc(), RecencyPolicy::lru());
/// let a = MemoryAccess::load(Pc::new(0x400100), Address::new(0x8000), 0);
/// let set = cache.set_of(a.address);
/// let out = cache.access(&AccessContext::demand(0, &a, set));
/// assert!(!out.hit);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssociativeCache<P> {
    config: CacheConfig,
    lines: Vec<Option<LineMeta>>,
    policy: P,
    stats: CacheStats,
}

impl<P: ReplacementPolicy> SetAssociativeCache<P> {
    /// Creates an empty cache with the given geometry and policy.
    pub fn new(config: CacheConfig, policy: P) -> Self {
        let capacity = config.capacity_lines();
        SetAssociativeCache {
            config,
            lines: vec![None; capacity],
            policy,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Aggregate hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The replacement policy (shared access).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The replacement policy (exclusive access, e.g. to reconfigure a
    /// bypass list between runs).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// The set an address maps to.
    pub fn set_of(&self, address: Address) -> SetId {
        self.config.set_of(address)
    }

    /// The set a line address maps to.
    pub fn set_of_line(&self, line: LineAddr) -> SetId {
        line.set(self.config.sets_log2)
    }

    /// A view of the ways of `set`.
    pub fn set_lines(&self, set: SetId) -> &[Option<LineMeta>] {
        let base = set.index() * self.config.ways;
        &self.lines[base..base + self.config.ways]
    }

    /// The policy's current per-way eviction scores for `set`.
    pub fn line_scores(&self, set: SetId, now: u64) -> Vec<u64> {
        self.policy.line_scores(set, self.set_lines(set), now)
    }

    /// Whether `line` is currently resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = self.set_of_line(line);
        self.set_lines(set).iter().flatten().any(|meta| meta.line == line)
    }

    fn set_range(&self, set: SetId) -> std::ops::Range<usize> {
        let base = set.index() * self.config.ways;
        base..base + self.config.ways
    }

    /// Performs one access, consulting the replacement policy on misses.
    ///
    /// The caller provides the [`AccessContext`] (so a replay driver can
    /// attach oracle information); `ctx.set` must equal
    /// `self.set_of_line(ctx.line)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `ctx.set` is inconsistent with `ctx.line`.
    pub fn access(&mut self, ctx: &AccessContext) -> AccessOutcome {
        debug_assert_eq!(
            ctx.set,
            self.set_of_line(ctx.line),
            "AccessContext.set disagrees with the cache geometry"
        );
        let range = self.set_range(ctx.set);
        let ways = self.config.ways;
        let is_store = matches!(ctx.kind, crate::access::AccessKind::Store);

        // Hit path.
        if let Some(way) = (0..ways).find(|&w| {
            self.lines[range.start + w].as_ref().is_some_and(|meta| meta.line == ctx.line)
        }) {
            {
                let meta = self.lines[range.start + way].as_mut().expect("hit way must be valid");
                meta.last_touch = ctx.index;
                meta.last_pc = ctx.pc;
                meta.dirty |= is_store;
            }
            let set_view = &self.lines[range.clone()];
            self.policy.on_hit(way, set_view, ctx);
            self.stats.record_hit(ctx.kind);
            return AccessOutcome { hit: true, way: Some(way), evicted: None, bypassed: false };
        }

        // Miss path: fill an invalid way if one exists.
        self.stats.record_miss(ctx.kind);
        let fill = LineMeta {
            line: ctx.line,
            last_pc: ctx.pc,
            insert_pc: ctx.pc,
            inserted_at: ctx.index,
            last_touch: ctx.index,
            dirty: is_store,
        };
        if let Some(way) = (0..ways).find(|&w| self.lines[range.start + w].is_none()) {
            self.lines[range.start + way] = Some(fill);
            let set_view = &self.lines[range.clone()];
            self.policy.on_fill(way, set_view, ctx);
            return AccessOutcome { hit: false, way: Some(way), evicted: None, bypassed: false };
        }

        // Full set: ask the policy.
        let decision = {
            let set_view = &self.lines[range.clone()];
            self.policy.choose_victim(set_view, ctx)
        };
        match decision {
            Decision::Bypass => {
                self.stats.bypasses += 1;
                AccessOutcome { hit: false, way: None, evicted: None, bypassed: true }
            }
            Decision::Evict(way) => {
                assert!(way < ways, "policy returned out-of-range way {way}");
                let evicted = self.lines[range.start + way].replace(fill);
                self.stats.evictions += 1;
                let set_view = &self.lines[range.clone()];
                self.policy.on_fill(way, set_view, ctx);
                AccessOutcome { hit: false, way: Some(way), evicted, bypassed: false }
            }
        }
    }

    /// Invalidates `line` if resident, returning its metadata.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineMeta> {
        let set = self.set_of_line(line);
        let range = self.set_range(set);
        for slot in &mut self.lines[range] {
            if slot.as_ref().is_some_and(|meta| meta.line == line) {
                return slot.take();
            }
        }
        None
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::MemoryAccess;
    use crate::replacement::RecencyPolicy;

    fn lru_cache(sets_log2: u32, ways: usize) -> SetAssociativeCache<RecencyPolicy> {
        SetAssociativeCache::new(CacheConfig::new("t", sets_log2, ways, 6), RecencyPolicy::lru())
    }

    fn go(cache: &mut SetAssociativeCache<RecencyPolicy>, addr: u64, idx: u64) -> AccessOutcome {
        let a = MemoryAccess::load(Pc::new(0x400000 + idx), Address::new(addr), idx);
        let set = cache.set_of(a.address);
        cache.access(&AccessContext::demand(idx, &a, set))
    }

    #[test]
    fn repeated_access_hits() {
        let mut cache = lru_cache(2, 2);
        assert!(!go(&mut cache, 0x40, 0).hit);
        assert!(go(&mut cache, 0x40, 1).hit);
        assert!(go(&mut cache, 0x7f, 2).hit, "same line, different offset");
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn eviction_reports_victim() {
        let mut cache = lru_cache(0, 1);
        assert!(!go(&mut cache, 0x000, 0).hit);
        let out = go(&mut cache, 0x040, 1);
        assert!(!out.hit);
        let evicted = out.evicted.expect("direct-mapped eviction");
        assert_eq!(evicted.line, Address::new(0x000).line(6));
    }

    #[test]
    fn occupancy_tracks_fills_and_invalidations() {
        let mut cache = lru_cache(1, 2);
        go(&mut cache, 0x000, 0);
        go(&mut cache, 0x040, 1);
        assert_eq!(cache.occupancy(), 2);
        assert!(cache.invalidate(Address::new(0x000).line(6)).is_some());
        assert_eq!(cache.occupancy(), 1);
        assert!(cache.invalidate(Address::new(0x000).line(6)).is_none());
    }

    #[test]
    fn store_marks_dirty() {
        let mut cache = lru_cache(1, 2);
        let a = MemoryAccess::store(Pc::new(1), Address::new(0x80), 0);
        let set = cache.set_of(a.address);
        cache.access(&AccessContext::demand(0, &a, set));
        let line = a.address.line(6);
        let meta = cache
            .set_lines(cache.set_of_line(line))
            .iter()
            .flatten()
            .find(|m| m.line == line)
            .copied()
            .unwrap();
        assert!(meta.dirty);
    }

    #[test]
    fn contains_reflects_residency() {
        let mut cache = lru_cache(2, 2);
        let line = Address::new(0x1000).line(6);
        assert!(!cache.contains(line));
        go(&mut cache, 0x1000, 0);
        assert!(cache.contains(line));
    }

    /// Failure injection: a buggy policy returning an out-of-range way must
    /// be caught by the cache, not corrupt adjacent sets.
    #[test]
    #[should_panic(expected = "out-of-range way")]
    fn malicious_policy_is_rejected() {
        #[derive(Debug)]
        struct Evil;
        impl crate::replacement::ReplacementPolicy for Evil {
            fn name(&self) -> &'static str {
                "evil"
            }
            fn on_hit(&mut self, _: usize, _: &[Option<LineMeta>], _: &AccessContext) {}
            fn choose_victim(
                &mut self,
                lines: &[Option<LineMeta>],
                _: &AccessContext,
            ) -> crate::replacement::Decision {
                crate::replacement::Decision::Evict(lines.len() + 7)
            }
            fn on_fill(&mut self, _: usize, _: &[Option<LineMeta>], _: &AccessContext) {}
        }
        let mut cache = SetAssociativeCache::new(CacheConfig::new("t", 0, 1, 6), Evil);
        for (i, addr) in [0u64, 64].iter().enumerate() {
            let a = MemoryAccess::load(Pc::new(1), Address::new(*addr), i as u64);
            let set = cache.set_of(a.address);
            let _ = cache.access(&AccessContext::demand(i as u64, &a, set));
        }
    }
}
