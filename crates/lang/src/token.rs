//! A small, deterministic tokenizer for queries and trace text.

/// A token: lowercased word, hexadecimal literal or number.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Token {
    /// A lowercased alphabetic word.
    Word(String),
    /// A hexadecimal literal (`0x...`), normalised to lowercase without the
    /// prefix.
    Hex(u64),
    /// A decimal number.
    Number(u64),
}

impl Token {
    /// The token's textual form (words as-is, numbers re-rendered).
    pub fn text(&self) -> String {
        match self {
            Token::Word(w) => w.clone(),
            Token::Hex(h) => format!("0x{h:x}"),
            Token::Number(n) => n.to_string(),
        }
    }
}

/// Tokenizes `input` into words, hex literals and numbers.
///
/// ```rust
/// use cachemind_lang::token::{tokenize, Token};
///
/// let toks = tokenize("Does PC 0x401dc9 miss on lbm?");
/// assert!(toks.contains(&Token::Hex(0x401dc9)));
/// assert!(toks.contains(&Token::Word("lbm".into())));
/// ```
pub fn tokenize(input: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut buf = String::new();
    let flush = |buf: &mut String, out: &mut Vec<Token>| {
        if buf.is_empty() {
            return;
        }
        let word = std::mem::take(buf);
        let lower = word.to_lowercase();
        if let Some(hex) = lower.strip_prefix("0x") {
            if let Ok(v) = u64::from_str_radix(hex, 16) {
                out.push(Token::Hex(v));
                return;
            }
        }
        if lower.chars().all(|c| c.is_ascii_digit()) {
            if let Ok(v) = lower.parse() {
                out.push(Token::Number(v));
                return;
            }
        }
        out.push(Token::Word(lower));
    };
    for c in input.chars() {
        if c.is_alphanumeric() || c == '_' {
            buf.push(c);
            // Keep `0x` prefixes glued to their digits.
            continue;
        }
        if c == 'x' || c == 'X' {
            buf.push(c);
            continue;
        }
        let _ = c;
        flush(&mut buf, &mut out);
    }
    flush(&mut buf, &mut out);
    out
}

/// Extracts every hexadecimal literal from `input`, in order.
pub fn hex_literals(input: &str) -> Vec<u64> {
    tokenize(input)
        .into_iter()
        .filter_map(|t| match t {
            Token::Hex(h) => Some(h),
            _ => None,
        })
        .collect()
}

/// Extracts every plain decimal number from `input`, in order.
pub fn numbers(input: &str) -> Vec<u64> {
    tokenize(input)
        .into_iter()
        .filter_map(|t| match t {
            Token::Number(n) => Some(n),
            _ => None,
        })
        .collect()
}

/// Lowercased word tokens only.
pub fn words(input: &str) -> Vec<String> {
    tokenize(input)
        .into_iter()
        .filter_map(|t| match t {
            Token::Word(w) => Some(w),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_and_words_separate() {
        let toks = tokenize("PC 0x4037ba on mcf with PARROT policy");
        assert_eq!(hex_literals("PC 0x4037ba on mcf"), vec![0x4037ba]);
        assert!(toks.contains(&Token::Word("parrot".into())));
        assert!(toks.contains(&Token::Word("mcf".into())));
    }

    #[test]
    fn numbers_are_parsed() {
        assert_eq!(numbers("top 5 sets out of 2048"), vec![5, 2048]);
    }

    #[test]
    fn punctuation_splits_tokens() {
        let ws = words("Why does Belady outperform LRU?");
        assert_eq!(ws, vec!["why", "does", "belady", "outperform", "lru"]);
    }

    #[test]
    fn tokenize_is_deterministic_and_total() {
        for s in ["", "???", "0x", "0xzz", "x", "___", "a 0x1F b 12"] {
            assert_eq!(tokenize(s), tokenize(s));
        }
        assert_eq!(tokenize("0x1F"), vec![Token::Hex(0x1f)]);
    }
}
