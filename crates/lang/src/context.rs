//! The typed context bundle a retriever hands to the generator.
//!
//! The paper's retrieval output is a "compact context bundle" of trace
//! slices, statistics and metadata (Fig. 1). We represent it as structured
//! [`Fact`]s plus rendered text, so that the grounded reasoner can compute
//! answers *only from what was actually retrieved* — retrieval quality then
//! causally determines answer quality, which is the paper's central claim
//! (Fig. 5).

use serde::{Deserialize, Serialize};

use cachemind_sim::addr::{Address, Pc};

/// A verifiable fact extracted from the trace database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fact {
    /// The recorded outcome of a specific access tuple.
    Outcome {
        /// Program counter.
        pc: Option<Pc>,
        /// Byte address.
        address: Option<Address>,
        /// Workload name.
        workload: String,
        /// Policy name.
        policy: String,
        /// Whether the access missed.
        is_miss: bool,
        /// Address evicted by the access, with its reuse distance.
        evicted: Option<(Address, Option<u64>)>,
        /// Forward reuse distance of the inserted line.
        inserted_reuse: Option<u64>,
    },
    /// A miss rate for a scope (PC or whole workload).
    MissRate {
        /// Human-readable scope ("PC 0x4037ba", "workload mcf").
        scope: String,
        /// Miss rate in percent.
        percent: f64,
        /// Number of accesses behind the rate.
        accesses: u64,
    },
    /// A per-policy value used for ranking (policy comparison questions).
    PolicyValue {
        /// Policy name.
        policy: String,
        /// Metric name ("miss rate %").
        metric: String,
        /// Metric value.
        value: f64,
    },
    /// A count of matching events. `complete` is false when the retriever
    /// could only see a truncated slice — the root cause of the paper's
    /// universal Count failures under template retrieval.
    CountValue {
        /// What was counted.
        what: String,
        /// The count over the *visible* slice.
        value: u64,
        /// Whether the slice covered every matching row.
        complete: bool,
    },
    /// A numeric aggregate (mean reuse distance etc.), with the same
    /// completeness caveat.
    NumericValue {
        /// What was computed.
        what: String,
        /// The value over the visible slice.
        value: f64,
        /// Whether the aggregate covered every matching row.
        complete: bool,
    },
    /// The query's premise contradicts the database (trick questions).
    PremiseViolation {
        /// Why the premise is invalid.
        reason: String,
    },
    /// A free-text snippet (policy description, metadata, assembly window).
    Snippet {
        /// Snippet title.
        title: String,
        /// Snippet body.
        text: String,
    },
}

impl Fact {
    /// A one-line rendering for prompt assembly.
    pub fn render(&self) -> String {
        match self {
            Fact::Outcome { pc, address, workload, policy, is_miss, evicted, inserted_reuse } => {
                let mut s = format!(
                    "For policy {} on workload {}{}{}: Cache result: {}.",
                    policy,
                    workload,
                    pc.map(|p| format!(" at PC {p}")).unwrap_or_default(),
                    address.map(|a| format!(" and address {a}")).unwrap_or_default(),
                    if *is_miss { "Cache Miss" } else { "Cache Hit" },
                );
                if let Some((ev, reuse)) = evicted {
                    s.push_str(&format!(" Evicted address: {ev}"));
                    if let Some(r) = reuse {
                        s.push_str(&format!(" (needed again in {r} accesses)"));
                    }
                    s.push('.');
                }
                if let Some(r) = inserted_reuse {
                    s.push_str(&format!(" Inserted address needed again in {r} accesses."));
                }
                s
            }
            Fact::MissRate { scope, percent, accesses } => {
                format!("The miss rate for {scope} is {percent:.2}% over {accesses} accesses.")
            }
            Fact::PolicyValue { policy, metric, value } => {
                format!("Policy {policy}: {metric} = {value:.2}.")
            }
            Fact::CountValue { what, value, complete } => {
                if *complete {
                    format!("Count of {what}: {value}.")
                } else {
                    format!("Count of {what} within the retrieved slice (truncated): {value}.")
                }
            }
            Fact::NumericValue { what, value, complete } => {
                if *complete {
                    format!("{what} = {value:.2}.")
                } else {
                    format!("{what} over the retrieved slice (truncated) = {value:.2}.")
                }
            }
            Fact::PremiseViolation { reason } => {
                format!("Premise check failed: {reason}")
            }
            Fact::Snippet { title, text } => format!("{title}:\n{text}"),
        }
    }
}

/// The retriever's own grading of its bundle, used for the Figure 5
/// retrieval-quality study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ContextQuality {
    /// Wrong or empty context.
    Low,
    /// Partially relevant context (right trace, wrong granularity).
    Medium,
    /// The exact slice needed.
    High,
}

impl ContextQuality {
    /// Axis label.
    pub const fn label(self) -> &'static str {
        match self {
            ContextQuality::Low => "Low",
            ContextQuality::Medium => "Medium",
            ContextQuality::High => "High",
        }
    }
}

/// The full bundle handed to the generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievedContext {
    /// Structured facts.
    pub facts: Vec<Fact>,
    /// The retriever's self-grade.
    pub quality: ContextQuality,
    /// Which retriever produced the bundle ("sieve", "ranger", "dense").
    pub retriever: String,
}

impl RetrievedContext {
    /// An empty (failed-retrieval) bundle.
    pub fn empty(retriever: &str) -> Self {
        RetrievedContext {
            facts: Vec::new(),
            quality: ContextQuality::Low,
            retriever: retriever.to_owned(),
        }
    }

    /// Renders all facts as prompt text.
    pub fn render(&self) -> String {
        self.facts.iter().map(Fact::render).collect::<Vec<_>>().join("\n")
    }

    /// The first premise violation, if retrieval found one.
    pub fn premise_violation(&self) -> Option<&str> {
        self.facts.iter().find_map(|f| match f {
            Fact::PremiseViolation { reason } => Some(reason.as_str()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_rendering_matches_paper_vocabulary() {
        let f = Fact::Outcome {
            pc: Some(Pc::new(0x401dc9)),
            address: Some(Address::new(0x47ea85d37f)),
            workload: "lbm".into(),
            policy: "lru".into(),
            is_miss: true,
            evicted: Some((Address::new(0x19e02d19b7f), Some(2304))),
            inserted_reuse: Some(3132),
        };
        let s = f.render();
        assert!(s.contains("Cache Miss"));
        assert!(s.contains("needed again in 2304 accesses"));
        assert!(s.contains("Inserted address needed again in 3132 accesses"));
    }

    #[test]
    fn quality_ordering() {
        assert!(ContextQuality::Low < ContextQuality::Medium);
        assert!(ContextQuality::Medium < ContextQuality::High);
    }

    #[test]
    fn premise_violation_lookup() {
        let mut ctx = RetrievedContext::empty("sieve");
        assert!(ctx.premise_violation().is_none());
        ctx.facts.push(Fact::PremiseViolation { reason: "PC appears only in mcf".into() });
        assert_eq!(ctx.premise_violation(), Some("PC appears only in mcf"));
    }

    #[test]
    fn render_joins_facts() {
        let ctx = RetrievedContext {
            facts: vec![
                Fact::MissRate { scope: "PC 0x401e31".into(), percent: 44.69, accesses: 100 },
                Fact::Snippet { title: "Assembly".into(), text: "mov %rax,%rbx".into() },
            ],
            quality: ContextQuality::High,
            retriever: "ranger".into(),
        };
        let text = ctx.render();
        assert!(text.contains("44.69%"));
        assert!(text.contains("mov %rax,%rbx"));
    }
}
