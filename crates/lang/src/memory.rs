//! Conversation memory: sliding buffer + summaries + vector recall.
//!
//! "We augmented the Generator LLM with conversation memory buffer, turning
//! it into an assistive chat tool. This enables reasoning across multiple
//! queries by retaining intermediate results, previous contexts, and
//! trace-level insights." (§1). The three standard layers are implemented:
//! a sliding buffer of recent turns, extractive summaries of evicted turns,
//! and a vector store over everything for similarity recall.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::vector::VectorStore;

/// Who produced a turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// The human architect.
    User,
    /// CacheMind.
    Assistant,
}

impl Role {
    /// Display label.
    pub const fn label(self) -> &'static str {
        match self {
            Role::User => "User",
            Role::Assistant => "Assistant",
        }
    }
}

/// One conversation turn.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Turn {
    /// Speaker.
    pub role: Role,
    /// Text content.
    pub text: String,
}

/// The conversation-memory layer.
#[derive(Debug)]
pub struct ConversationMemory {
    buffer: VecDeque<Turn>,
    max_turns: usize,
    summaries: Vec<String>,
    store: VectorStore,
    stored: usize,
}

impl ConversationMemory {
    /// Creates a memory keeping the most recent `max_turns` turns verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `max_turns` is zero.
    pub fn new(max_turns: usize) -> Self {
        assert!(max_turns > 0, "memory must keep at least one turn");
        ConversationMemory {
            buffer: VecDeque::new(),
            max_turns,
            summaries: Vec::new(),
            store: VectorStore::new(64),
            stored: 0,
        }
    }

    /// Records a turn; old turns overflow into summaries + the vector store.
    pub fn push(&mut self, role: Role, text: &str) {
        self.store.add(&format!("turn-{}", self.stored), text);
        self.stored += 1;
        self.buffer.push_back(Turn { role, text: text.to_owned() });
        while self.buffer.len() > self.max_turns {
            let old = self.buffer.pop_front().expect("non-empty buffer");
            self.summaries.push(summarize(&old));
        }
    }

    /// Recent turns, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &Turn> {
        self.buffer.iter()
    }

    /// Summaries of evicted turns, oldest first.
    pub fn summaries(&self) -> &[String] {
        &self.summaries
    }

    /// Recalls up to `k` past turns similar to `query` from the vector
    /// memory (may include turns still in the buffer).
    pub fn recall(&self, query: &str, k: usize) -> Vec<String> {
        self.store
            .search(query, k)
            .into_iter()
            .map(|hit| self.store.text(hit.index).to_owned())
            .collect()
    }

    /// Renders the memory context for the next prompt: summaries first,
    /// then the verbatim recent window.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.summaries.is_empty() {
            out.push_str("Earlier in this session:\n");
            for s in &self.summaries {
                out.push_str(&format!("- {s}\n"));
            }
        }
        for t in &self.buffer {
            out.push_str(&format!("{}: {}\n", t.role.label(), t.text));
        }
        out
    }

    /// Total turns ever recorded.
    pub fn total_turns(&self) -> usize {
        self.stored
    }
}

/// Naive extractive summary: the first sentence, truncated.
fn summarize(turn: &Turn) -> String {
    let first = turn.text.split(['.', '\n']).next().unwrap_or("").trim();
    let mut s = format!("{} said: {first}", turn.role.label());
    if s.len() > 120 {
        s.truncate(117);
        s.push_str("...");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_slides_and_summarizes() {
        let mut m = ConversationMemory::new(2);
        m.push(Role::User, "List all unique PCs in the trace.");
        m.push(Role::Assistant, "4184b0, 4184c0, 418502.");
        m.push(Role::User, "Compute mean ETR per PC.");
        assert_eq!(m.recent().count(), 2);
        assert_eq!(m.summaries().len(), 1);
        assert!(m.summaries()[0].contains("unique PCs"));
        assert_eq!(m.total_turns(), 3);
    }

    #[test]
    fn recall_finds_similar_turns() {
        let mut m = ConversationMemory::new(2);
        m.push(Role::User, "Group PCs by ETR variance for mockingjay training.");
        m.push(Role::User, "What is the weather like?");
        m.push(Role::User, "List hot cache sets in astar.");
        let recalled = m.recall("PCs with low ETR variance", 1);
        assert!(recalled[0].contains("ETR variance"));
    }

    #[test]
    fn render_contains_both_layers() {
        let mut m = ConversationMemory::new(1);
        m.push(Role::User, "First question about miss rates.");
        m.push(Role::Assistant, "Answer with numbers.");
        let text = m.render();
        assert!(text.contains("Earlier in this session"));
        assert!(text.contains("Assistant: Answer with numbers."));
    }

    #[test]
    #[should_panic(expected = "at least one turn")]
    fn zero_capacity_rejected() {
        let _ = ConversationMemory::new(0);
    }
}
