//! Prompt assembly: system prompt, retrieved context, k-shot examples.
//!
//! CacheMind "performs one-shot and few-shot prompt engineering ... by
//! passing one or three context-response example pairs to the Generator
//! LLM" (§1, Fig. 6). The builder renders the same structure.

use serde::{Deserialize, Serialize};

use crate::context::RetrievedContext;

/// A context/question/answer example pair for k-shot prompting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Example {
    /// The example's retrieved context.
    pub context: String,
    /// The example question.
    pub question: String,
    /// The correct answer.
    pub answer: String,
}

impl Example {
    /// The paper's Figure 6 one-shot example (Cache Hit/Miss category).
    pub fn figure6() -> Example {
        Example {
            context: "For policy LRU on workload lbm at PC 0x401dc9 and address \
                      0x47ea85d37f: Cache result: Cache Miss. Evicted address: \
                      0x19e02d19b7f (needed again in 2304 accesses), Inserted address \
                      needed again in 3132 accesses."
                .to_owned(),
            question: "Does the memory access with PC 0x401dc9 and address 0x47ea85d37f \
                       result in a cache hit or cache miss for the lbm workload and LRU \
                       replacement policy?"
                .to_owned(),
            answer: "Cache Miss".to_owned(),
        }
    }
}

/// Builds generator prompts.
#[derive(Debug, Clone, Default)]
pub struct PromptBuilder {
    system: String,
    examples: Vec<Example>,
}

impl PromptBuilder {
    /// Starts a builder with the CacheMind generator system prompt.
    pub fn new() -> Self {
        PromptBuilder {
            system: "You are CacheMind, a cache-replacement analysis assistant. Answer \
                     strictly from the retrieved trace context; if the context does not \
                     support an answer, say so. Ground every number in the evidence."
                .to_owned(),
            examples: Vec::new(),
        }
    }

    /// Replaces the system prompt.
    pub fn system(mut self, text: &str) -> Self {
        self.system = text.to_owned();
        self
    }

    /// Appends a k-shot example.
    pub fn example(mut self, example: Example) -> Self {
        self.examples.push(example);
        self
    }

    /// The configured examples.
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    /// Renders the complete prompt for a question and its context.
    pub fn render(&self, question: &str, context: &RetrievedContext) -> String {
        let mut out = String::new();
        out.push_str("SYSTEM:\n");
        out.push_str(&self.system);
        out.push_str("\n\n");
        for (i, ex) in self.examples.iter().enumerate() {
            out.push_str(&format!(
                "EXAMPLE {}:\nContext:\n{}\nQuestion: {}\nThe correct answer is: {}\n\n",
                i + 1,
                ex.context,
                ex.question,
                ex.answer
            ));
        }
        out.push_str("Context:\n");
        out.push_str(&context.render());
        out.push_str("\n\nAnswer the following question: ");
        out.push_str(question);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ContextQuality, Fact};

    #[test]
    fn render_includes_all_sections() {
        let ctx = RetrievedContext {
            facts: vec![Fact::Snippet { title: "Meta".into(), text: "94.91% miss rate".into() }],
            quality: ContextQuality::High,
            retriever: "sieve".into(),
        };
        let prompt = PromptBuilder::new().example(Example::figure6()).render("Hit or miss?", &ctx);
        assert!(prompt.contains("SYSTEM:"));
        assert!(prompt.contains("EXAMPLE 1:"));
        assert!(prompt.contains("94.91% miss rate"));
        assert!(prompt.contains("Hit or miss?"));
    }

    #[test]
    fn figure6_example_is_faithful() {
        let ex = Example::figure6();
        assert!(ex.context.contains("needed again in 2304 accesses"));
        assert_eq!(ex.answer, "Cache Miss");
    }
}
