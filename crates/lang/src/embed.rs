//! Deterministic hashed sentence embeddings.
//!
//! A bag-of-hashed-tokens embedder: every token hashes to a signed
//! contribution across a fixed number of dimensions, the sum is
//! L2-normalised. Two texts sharing most tokens embed almost identically —
//! which is precisely the failure mode the paper demonstrates for
//! embedding-based RAG over traces, where "records differ only by small
//! numerical or bit-level changes" (§6.2).

use serde::{Deserialize, Serialize};

use crate::token::{tokenize, Token};

/// A fixed-dimension text embedder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashedEmbedder {
    dims: usize,
}

impl Default for HashedEmbedder {
    fn default() -> Self {
        HashedEmbedder::new(64)
    }
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn token_seed(token: &Token) -> u64 {
    match token {
        Token::Word(w) => w
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01B3)),
        Token::Hex(h) => mix(*h ^ 0x48),
        Token::Number(n) => mix(*n ^ 0x4E),
    }
}

impl HashedEmbedder {
    /// Creates an embedder with `dims` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is zero.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "embedding dimension must be positive");
        HashedEmbedder { dims }
    }

    /// The embedding dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Embeds `text` into a unit-norm vector (zero vector for empty text).
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dims];
        for token in tokenize(text) {
            let seed = token_seed(&token);
            // Each token contributes to 8 dimensions with signed weights.
            for k in 0..8u64 {
                let h = mix(seed ^ k.wrapping_mul(0x9E37_79B9));
                let dim = (h % self.dims as u64) as usize;
                let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
                v[dim] += sign;
            }
        }
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }

    /// Cosine similarity of two embeddings.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "embedding dimensions must match");
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Convenience: cosine similarity of two texts.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        Self::cosine(&self.embed(a), &self.embed(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_have_similarity_one() {
        let e = HashedEmbedder::default();
        let s = e.similarity("miss rate for PC 0x401e31", "miss rate for PC 0x401e31");
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn near_identical_numeric_rows_confuse_embeddings() {
        // The LlamaIndex failure mode: rows differing by one hex digit are
        // nearly indistinguishable to bag-of-token embeddings.
        let e = HashedEmbedder::default();
        let a = "trace astar lru program_counter 0x409538 memory_address 0x2bfd401b693 evict Cache Miss";
        let b = "trace astar lru program_counter 0x409270 memory_address 0x2bfd401c63f evict Cache Miss";
        let sim = e.similarity(a, b);
        assert!(sim > 0.6, "numeric confusion similarity {sim}");
    }

    #[test]
    fn unrelated_texts_have_low_similarity() {
        let e = HashedEmbedder::default();
        let s = e.similarity(
            "the quick brown fox jumps over the lazy dog",
            "cache_set_id 0b10110011101 eviction scores",
        );
        assert!(s < 0.5, "unrelated similarity {s}");
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let e = HashedEmbedder::new(32);
        let v = e.embed("hello world 0x42");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        assert!(e.embed("").iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dims_rejected() {
        let _ = HashedEmbedder::new(0);
    }
}
