//! Backend capability profiles — the documented substitution for the
//! paper's five OpenAI generators.
//!
//! Each backend is modelled as a *conditional competence table*: the
//! probability that the backend converts a sufficient retrieved context
//! into a correct answer, per benchmark category. The numbers are
//! calibrated to Figure 4 of the paper (see EXPERIMENTS.md for the
//! calibration notes); the retrieval failures that drive category
//! collapses (e.g. Count = 0% under template retrieval) are *not* encoded
//! here — they emerge mechanistically from the retrievers.
//!
//! Characteristic failure modes are also reproduced: o3's bimodal rubric
//! scores, the fine-tuned model's amplified hallucination on trick and
//! semantic questions, and GPT-3.5's premise acceptance.

use serde::{Deserialize, Serialize};

use crate::intent::QueryCategory;

/// The five generator backends of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// GPT-3.5-Turbo — the legacy baseline.
    Gpt35Turbo,
    /// o3 — strong reasoning, inconsistent coverage (bimodal).
    O3,
    /// GPT-4o — the flexible general-purpose model (best overall).
    Gpt4o,
    /// GPT-4o-mini — smaller and cheaper.
    Gpt4oMini,
    /// GPT-4o-mini fine-tuned on cache traces — narrower, more
    /// hallucination-prone on reasoning categories.
    FinetunedGpt4oMini,
}

impl BackendKind {
    /// All backends in Figure 4 order.
    pub const ALL: [BackendKind; 5] = [
        BackendKind::Gpt35Turbo,
        BackendKind::O3,
        BackendKind::Gpt4o,
        BackendKind::Gpt4oMini,
        BackendKind::FinetunedGpt4oMini,
    ];

    /// Display label.
    pub const fn label(self) -> &'static str {
        match self {
            BackendKind::Gpt35Turbo => "GPT-3.5-Turbo",
            BackendKind::O3 => "o3",
            BackendKind::Gpt4o => "GPT-4o",
            BackendKind::Gpt4oMini => "GPT-4o-mini",
            BackendKind::FinetunedGpt4oMini => "Finetuned 4o-mini",
        }
    }

    /// Conditional competence: probability of a correct answer *given a
    /// sufficient retrieved context*, per category. Calibrated to Figure 4.
    pub fn competence(self, category: QueryCategory) -> f64 {
        use BackendKind::*;
        use QueryCategory::*;
        let pct: f64 = match (self, category) {
            // Trace-grounded tier. Count/Arithmetic figures in the paper are
            // dominated by retrieval truncation; conditional competence is
            // set above the observed numbers so the retriever drives them.
            (Gpt35Turbo, HitMiss) => 86.7,
            (O3, HitMiss) => 86.7,
            (Gpt4o, HitMiss) => 83.3,
            (Gpt4oMini, HitMiss) => 83.3,
            (FinetunedGpt4oMini, HitMiss) => 86.7,

            (FinetunedGpt4oMini, MissRate) => 80.0,
            (_, MissRate) => 90.0,

            (Gpt35Turbo, PolicyComparison) => 46.7,
            (O3, PolicyComparison) => 73.3,
            (Gpt4o, PolicyComparison) => 60.0,
            (Gpt4oMini, PolicyComparison) => 66.7,
            (FinetunedGpt4oMini, PolicyComparison) => 46.7,

            (_, Count) => 85.0,

            (Gpt35Turbo, Arithmetic) => 35.0,
            (O3, Arithmetic) => 55.0,
            (Gpt4o, Arithmetic) => 75.0,
            (Gpt4oMini, Arithmetic) => 55.0,
            (FinetunedGpt4oMini, Arithmetic) => 55.0,

            // Trick: probability of *rejecting* a false premise when the
            // contradiction is in context.
            (Gpt35Turbo, Trick) => 0.0,
            (O3, Trick) => 20.0,
            (Gpt4o, Trick) => 80.0,
            (Gpt4oMini, Trick) => 80.0,
            (FinetunedGpt4oMini, Trick) => 20.0,

            // Reasoning tier (rubric 0–5; competence scales expected score).
            (Gpt35Turbo, Concepts) => 56.0,
            (O3, Concepts) => 52.0,
            (Gpt4o, Concepts) => 80.0,
            (Gpt4oMini, Concepts) => 76.0,
            (FinetunedGpt4oMini, Concepts) => 60.0,

            (Gpt35Turbo, CodeGen) => 92.0,
            (O3, CodeGen) => 52.0,
            (Gpt4o, CodeGen) => 100.0,
            (Gpt4oMini, CodeGen) => 96.0,
            (FinetunedGpt4oMini, CodeGen) => 68.0,

            (Gpt35Turbo, PolicyAnalysis) => 56.0,
            (O3, PolicyAnalysis) => 60.0,
            (Gpt4o, PolicyAnalysis) => 84.0,
            (Gpt4oMini, PolicyAnalysis) => 76.0,
            (FinetunedGpt4oMini, PolicyAnalysis) => 72.0,

            (Gpt35Turbo, WorkloadAnalysis) => 48.0,
            (O3, WorkloadAnalysis) => 48.0,
            (Gpt4o, WorkloadAnalysis) => 88.0,
            (Gpt4oMini, WorkloadAnalysis) => 76.0,
            (FinetunedGpt4oMini, WorkloadAnalysis) => 68.0,

            (Gpt35Turbo, SemanticAnalysis) => 28.0,
            (O3, SemanticAnalysis) => 40.0,
            (Gpt4o, SemanticAnalysis) => 72.0,
            (Gpt4oMini, SemanticAnalysis) => 76.0,
            (FinetunedGpt4oMini, SemanticAnalysis) => 48.0,
        };
        pct / 100.0
    }

    /// Whether the backend admits missing context ("I could not find...")
    /// rather than hallucinating an answer. Mirrors the paper's "Trust and
    /// Epistemic Robustness" finding.
    pub fn admits_missing_context(self) -> bool {
        matches!(self, BackendKind::Gpt4o | BackendKind::Gpt4oMini)
    }

    /// Whether the backend's rubric scores are bimodal (o3: "excelling or
    /// failing completely", Fig. 7).
    pub fn bimodal_scores(self) -> bool {
        matches!(self, BackendKind::O3)
    }

    /// Whether, given insufficient context plus an in-prompt example, the
    /// backend "takes the context from the example as its own" (the paper's
    /// observed few-shot failure).
    pub fn copies_example_context(self) -> bool {
        matches!(self, BackendKind::Gpt35Turbo | BackendKind::FinetunedGpt4oMini)
    }

    /// A stable seed component for the backend's noise stream.
    pub const fn seed(self) -> u64 {
        match self {
            BackendKind::Gpt35Turbo => 0x3535,
            BackendKind::O3 => 0x03,
            BackendKind::Gpt4o => 0x40,
            BackendKind::Gpt4oMini => 0x40A1,
            BackendKind::FinetunedGpt4oMini => 0xF7A1,
        }
    }
}

/// A deterministic uniform draw in `[0, 1)` from hashable parts. Used for
/// all capability-model randomness so reruns are exactly reproducible.
pub fn unit_draw(parts: &[u64]) -> f64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &p in parts {
        h ^= p;
        h = h.wrapping_mul(0x100_0000_01B3);
        h ^= h >> 29;
    }
    // Final avalanche.
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Hashes a string into a seed component.
pub fn text_seed(text: &str) -> u64 {
    text.bytes().fold(0x9E37_79B9_7F4A_7C15u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01B3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn competence_is_probability() {
        for backend in BackendKind::ALL {
            for cat in QueryCategory::ALL {
                let p = backend.competence(cat);
                assert!((0.0..=1.0).contains(&p), "{backend:?} {cat:?} -> {p}");
            }
        }
    }

    #[test]
    fn gpt4o_is_most_trick_robust() {
        let trick = |b: BackendKind| b.competence(QueryCategory::Trick);
        assert!(trick(BackendKind::Gpt4o) > trick(BackendKind::O3));
        assert_eq!(trick(BackendKind::Gpt35Turbo), 0.0);
    }

    #[test]
    fn finetuning_narrows_reasoning() {
        // The paper: fine-tuning amplified hallucinations in Trick and
        // Semantic Analysis relative to the base 4o-mini.
        let ft = BackendKind::FinetunedGpt4oMini;
        let base = BackendKind::Gpt4oMini;
        assert!(ft.competence(QueryCategory::Trick) < base.competence(QueryCategory::Trick));
        assert!(
            ft.competence(QueryCategory::SemanticAnalysis)
                < base.competence(QueryCategory::SemanticAnalysis)
        );
    }

    #[test]
    fn unit_draw_is_deterministic_and_uniformish() {
        assert_eq!(unit_draw(&[1, 2, 3]), unit_draw(&[1, 2, 3]));
        assert_ne!(unit_draw(&[1, 2, 3]), unit_draw(&[1, 2, 4]));
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| unit_draw(&[i, 42])).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
