//! A brute-force cosine-similarity vector store.

use crate::embed::HashedEmbedder;

/// A scored retrieval hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Index of the stored document.
    pub index: usize,
    /// Cosine similarity to the query.
    pub score: f32,
}

/// An embedding index over text documents.
///
/// ```rust
/// use cachemind_lang::vector::VectorStore;
///
/// let mut store = VectorStore::new(64);
/// store.add("doc-a", "miss rate for PC 0x401e31 on lbm");
/// store.add("doc-b", "hot cache sets under belady");
/// let hits = store.search("what is the miss rate of PC 0x401e31?", 1);
/// assert_eq!(store.id(hits[0].index), "doc-a");
/// ```
#[derive(Debug, Clone)]
pub struct VectorStore {
    embedder: HashedEmbedder,
    ids: Vec<String>,
    texts: Vec<String>,
    vectors: Vec<Vec<f32>>,
}

impl VectorStore {
    /// Creates an empty store with `dims`-dimensional embeddings.
    pub fn new(dims: usize) -> Self {
        VectorStore {
            embedder: HashedEmbedder::new(dims),
            ids: Vec::new(),
            texts: Vec::new(),
            vectors: Vec::new(),
        }
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Adds a document; returns its index.
    pub fn add(&mut self, id: &str, text: &str) -> usize {
        self.ids.push(id.to_owned());
        self.texts.push(text.to_owned());
        self.vectors.push(self.embedder.embed(text));
        self.ids.len() - 1
    }

    /// The id of document `index`.
    pub fn id(&self, index: usize) -> &str {
        &self.ids[index]
    }

    /// The text of document `index`.
    pub fn text(&self, index: usize) -> &str {
        &self.texts[index]
    }

    /// Top-`k` documents by cosine similarity to `query`.
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit> {
        let qv = self.embedder.embed(query);
        let mut hits: Vec<Hit> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(index, v)| Hit { index, score: HashedEmbedder::cosine(&qv, v) })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.index.cmp(&b.index)));
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_ranks_by_similarity() {
        let mut store = VectorStore::new(64);
        store.add("a", "replacement policy comparison belady lru");
        store.add("b", "pointer chasing microbenchmark prefetch");
        store.add("c", "belady optimal replacement policy analysis");
        let hits = store.search("compare belady replacement policy", 2);
        assert_eq!(hits.len(), 2);
        assert_ne!(store.id(hits[0].index), "b");
    }

    #[test]
    fn empty_store_returns_nothing() {
        let store = VectorStore::new(16);
        assert!(store.search("anything", 3).is_empty());
        assert!(store.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut store = VectorStore::new(64);
        store.add("first", "same text");
        store.add("second", "same text");
        let hits = store.search("same text", 2);
        assert_eq!(store.id(hits[0].index), "first");
    }
}
