//! # cachemind-lang
//!
//! The language-model substrate of the CacheMind reproduction.
//!
//! The paper drives CacheMind with OpenAI models (GPT-3.5-Turbo, o3, GPT-4o,
//! GPT-4o-mini and a fine-tuned 4o-mini). No model API is available in this
//! reproduction environment, so this crate provides the substitution
//! documented in DESIGN.md:
//!
//! * a deterministic NL toolkit — [`token`] (tokenizer), [`embed`] (hashed
//!   sentence embeddings), [`vector`] (a cosine-similarity store) — which
//!   the retrievers build on *mechanistically* (no noise involved);
//! * a structured [`intent`] model: the query parser that maps
//!   natural-language questions to the eleven CacheMindBench categories and
//!   their slots (PC, address, workload, policy);
//! * [`context`]: the typed fact bundle retrieval hands to the generator;
//! * [`generator`]: a *grounded reasoner* that computes answers only from
//!   the retrieved facts, wrapped in per-backend [`profiles`] — seeded
//!   stochastic capability models calibrated to the paper's Figure 4; and
//! * [`memory`]: the conversation-memory layer (sliding buffer + summaries
//!   + vector recall) that turns the generator into a chat assistant.
//!
//! # Example
//!
//! ```rust
//! use cachemind_lang::prelude::*;
//!
//! let q = "What is the miss rate for PC 0x4037ba on the mcf workload with PARROT?";
//! let intent = QueryIntent::parse(q, &["astar", "lbm", "mcf"], &["belady", "lru", "mlp", "parrot"]);
//! assert_eq!(intent.category, QueryCategory::MissRate);
//! assert_eq!(intent.workload.as_deref(), Some("mcf"));
//! assert_eq!(intent.policy.as_deref(), Some("parrot"));
//! ```

pub mod context;
pub mod embed;
pub mod generator;
pub mod intent;
pub mod memory;
pub mod profiles;
pub mod prompt;
pub mod token;
pub mod vector;

pub use context::{ContextQuality, Fact, RetrievedContext};
pub use embed::HashedEmbedder;
pub use generator::{Generator, GeneratorAnswer, GeneratorRequest, SimulatedBackend, Verdict};
pub use intent::{QueryCategory, QueryIntent, Tier};
pub use memory::ConversationMemory;
pub use profiles::BackendKind;
pub use prompt::{Example, PromptBuilder};
pub use vector::VectorStore;

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::context::{ContextQuality, Fact, RetrievedContext};
    pub use crate::embed::HashedEmbedder;
    pub use crate::generator::{
        Generator, GeneratorAnswer, GeneratorRequest, SimulatedBackend, Verdict,
    };
    pub use crate::intent::{QueryCategory, QueryIntent, Tier};
    pub use crate::memory::ConversationMemory;
    pub use crate::profiles::BackendKind;
    pub use crate::prompt::{Example, PromptBuilder};
    pub use crate::vector::VectorStore;
}
