//! Query-intent parsing: the first stage of both retrievers.
//!
//! Maps a natural-language question to one of the eleven CacheMindBench
//! categories (Table 1) and extracts its slots — PC, memory address,
//! workload and policy names. The workload/policy vocabulary comes from the
//! database (the paper's "sentence embedder extracts workload and
//! replacement policy names ... matched against the database keys").

use serde::{Deserialize, Serialize};

use cachemind_sim::addr::{Address, Pc};
use cachemind_sim::scenario::ScenarioSelector;

use crate::token::{hex_literals, words};

/// Benchmark tier (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Trace-Grounded Questions (75): exact-match scoring.
    TraceGrounded,
    /// Architectural Reasoning and Analysis (25): rubric scoring 0–5.
    Reasoning,
}

/// The eleven benchmark categories of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryCategory {
    /// Hit/miss classification for a {PC, address, policy, workload} tuple.
    HitMiss,
    /// Per-PC or per-workload miss-rate computation.
    MissRate,
    /// Ranking policies by hit/miss behaviour.
    PolicyComparison,
    /// Event counting under filters.
    Count,
    /// Arithmetic over trace statistics.
    Arithmetic,
    /// Premise checks that should be rejected.
    Trick,
    /// General microarchitecture concepts.
    Concepts,
    /// Code generation over the trace schema.
    CodeGen,
    /// Causal replacement-policy analysis.
    PolicyAnalysis,
    /// Whole-workload characterisation.
    WorkloadAnalysis,
    /// Linking trace behaviour to code semantics.
    SemanticAnalysis,
}

impl QueryCategory {
    /// All categories in Table 1 order.
    pub const ALL: [QueryCategory; 11] = [
        QueryCategory::HitMiss,
        QueryCategory::MissRate,
        QueryCategory::PolicyComparison,
        QueryCategory::Count,
        QueryCategory::Arithmetic,
        QueryCategory::Trick,
        QueryCategory::Concepts,
        QueryCategory::CodeGen,
        QueryCategory::PolicyAnalysis,
        QueryCategory::WorkloadAnalysis,
        QueryCategory::SemanticAnalysis,
    ];

    /// The tier a category belongs to.
    pub const fn tier(self) -> Tier {
        match self {
            QueryCategory::HitMiss
            | QueryCategory::MissRate
            | QueryCategory::PolicyComparison
            | QueryCategory::Count
            | QueryCategory::Arithmetic
            | QueryCategory::Trick => Tier::TraceGrounded,
            _ => Tier::Reasoning,
        }
    }

    /// Human-readable label (Figure 4 axis).
    pub const fn label(self) -> &'static str {
        match self {
            QueryCategory::HitMiss => "Hit/Miss",
            QueryCategory::MissRate => "Miss Rate",
            QueryCategory::PolicyComparison => "Policy Comparison",
            QueryCategory::Count => "Count",
            QueryCategory::Arithmetic => "Arithmetic",
            QueryCategory::Trick => "Trick Question",
            QueryCategory::Concepts => "Microarchitecture Concepts",
            QueryCategory::CodeGen => "Code Generation",
            QueryCategory::PolicyAnalysis => "Policy Analysis",
            QueryCategory::WorkloadAnalysis => "Workload Analysis",
            QueryCategory::SemanticAnalysis => "Semantic Analysis",
        }
    }
}

/// A parsed query: surface category plus extracted slots.
///
/// Note that [`QueryCategory::Trick`] is never produced by the parser — a
/// trick question *looks like* an ordinary question with a false premise;
/// rejection happens downstream when retrieval surfaces the contradiction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryIntent {
    /// Surface category.
    pub category: QueryCategory,
    /// Extracted PC, if any.
    pub pc: Option<Pc>,
    /// Extracted memory address, if any.
    pub address: Option<Address>,
    /// Extracted workload name.
    pub workload: Option<String>,
    /// The first extracted policy name.
    pub policy: Option<String>,
    /// Every policy mentioned (policy comparisons mention several).
    pub policies: Vec<String>,
    /// Whether the query asks for the minimum ("lowest", "fewest") rather
    /// than the maximum of a ranked quantity.
    pub wants_minimum: bool,
    /// The scenario scope of the question: inline `@machine` syntax found
    /// in the text, merged over whatever scope the caller supplied (a
    /// session-pinned selector, a wire-protocol `scenario` field). Inline
    /// syntax wins per-field.
    pub selector: ScenarioSelector,
    /// The original question text.
    pub raw: String,
}

/// Whether a machine component extracted from free text plausibly names a
/// machine: a known [`MachineConfig::preset`] name, or something carrying
/// a canonical geometry segment (`llc2048x16+dram160`, `1024x16`). This
/// is what keeps incidental `@`-tokens in prose (quoted emails, paths)
/// from being adopted as scenario scopes and silently de-scoping
/// retrieval to a machine that cannot exist.
fn plausible_machine(machine: &str) -> bool {
    use cachemind_sim::config::MachineConfig;
    let looks_like_geometry = |segment: &str| {
        let segment = segment.strip_prefix("llc").unwrap_or(segment);
        match segment.split_once('x') {
            Some((sets, rest)) => {
                !sets.is_empty()
                    && sets.chars().all(|c| c.is_ascii_digit())
                    && rest.chars().next().is_some_and(|c| c.is_ascii_digit())
            }
            None => false,
        }
    };
    MachineConfig::preset(machine).is_some() || machine.split('@').any(looks_like_geometry)
}

/// Extracts the first inline selector token (`mcf@table2`, `@small/lru`,
/// `+stride4`, `astar@table2+stride4/lru`) from a question. Only tokens
/// containing `@` or `+` are considered — plain words never parse as
/// selectors, so questions without the syntax are untouched. A token is
/// adopted only when it is *credibly* a selector: its workload component
/// (if any) must be in the database vocabulary, its machine component (if
/// any) must name a preset or carry a canonical geometry segment
/// ([`plausible_machine`]), and the token must be *anchored* by a machine
/// or prefetcher component — the prefetcher slot anchors by construction,
/// since the selector parser only fills it when the `+component` names a
/// [`PrefetcherKind`](cachemind_sim::prefetch::PrefetcherKind). Quoted
/// emails, `C++` and other incidental `@`/`+` text are ignored rather
/// than silently scoping retrieval to a scenario that does not exist.
fn inline_selector(question: &str, workloads: &[&str]) -> ScenarioSelector {
    question
        .split_whitespace()
        .map(|tok| tok.trim_matches(|c: char| ".,;:!?()\"'".contains(c)))
        .filter(|tok| tok.contains('@') || tok.contains('+'))
        .filter_map(|tok| ScenarioSelector::parse(tok).ok())
        .find(|sel| {
            let anchored = sel.machine.is_some() || sel.prefetcher.is_some();
            anchored
                && sel.workload.as_deref().is_none_or(|w| workloads.contains(&w))
                && sel.machine.as_deref().is_none_or(plausible_machine)
        })
        .unwrap_or_default()
}

impl QueryIntent {
    /// Parses `question` against the database's workload and policy
    /// vocabularies, with no surrounding scenario scope (inline `@machine`
    /// syntax in the text is still honoured).
    pub fn parse(question: &str, workloads: &[&str], policies: &[&str]) -> QueryIntent {
        QueryIntent::parse_scoped(question, workloads, policies, &ScenarioSelector::all())
    }

    /// Parses `question` within a scenario scope: the selector's workload
    /// and policy act as defaults for slots the question leaves open
    /// (validated against the vocabularies, and applied *before*
    /// category classification, so a pinned session classifies "what is
    /// the IPC?" the way "what is the IPC for mcf?" classifies), and its
    /// machine/prefetcher scope rides along for retrieval. Inline
    /// `@machine` syntax in the text wins per-field over `scope`. With the
    /// unscoped selector this is exactly [`QueryIntent::parse`].
    pub fn parse_scoped(
        question: &str,
        workloads: &[&str],
        policies: &[&str],
        scope: &ScenarioSelector,
    ) -> QueryIntent {
        let selector = inline_selector(question, workloads).merged_over(scope);
        let ws = words(question);
        let has = |w: &str| ws.iter().any(|x| x == w);
        let has_phrase = |p: &str| question.to_lowercase().contains(p);

        let workload = ws
            .iter()
            .find(|w| workloads.contains(&w.as_str()))
            .cloned()
            .or_else(|| selector.workload.clone().filter(|w| workloads.contains(&w.as_str())));
        let mut mentioned: Vec<String> = {
            let mut seen = std::collections::HashSet::new();
            ws.iter()
                .filter(|w| policies.contains(&w.as_str()))
                .filter(|w| seen.insert((*w).clone()))
                .cloned()
                .collect()
        };
        if mentioned.is_empty() {
            if let Some(p) = selector.policy.clone().filter(|p| policies.contains(&p.as_str())) {
                mentioned.push(p);
            }
        }

        // Slot extraction: PCs are small (< 2^32, code addresses), data
        // addresses are large in our traces; fall back to order.
        let hexes = hex_literals(question);
        let (pc, address) = match hexes.len() {
            0 => (None, None),
            1 => {
                if hexes[0] < (1 << 32) {
                    (Some(Pc::new(hexes[0])), None)
                } else {
                    (None, Some(Address::new(hexes[0])))
                }
            }
            _ => {
                let (mut pc, mut addr) = (None, None);
                for &h in &hexes {
                    if h < (1 << 32) && pc.is_none() {
                        pc = Some(Pc::new(h));
                    } else if addr.is_none() {
                        addr = Some(Address::new(h));
                    }
                }
                (pc, addr)
            }
        };

        // Category rules, most specific first.
        let category = if has_phrase("write code")
            || has_phrase("generate code")
            || has_phrase("generate python")
            || has("code") && (has("write") || has("generate"))
        {
            QueryCategory::CodeGen
        } else if has_phrase("how many") || has("count") || has_phrase("number of times") {
            QueryCategory::Count
        } else if has("average")
            || has("mean")
            || has_phrase("standard deviation")
            || has("sum")
            || ((has("maximum") || has("minimum")) && has("distance"))
        {
            QueryCategory::Arithmetic
        } else if has_phrase("which workload") {
            QueryCategory::WorkloadAnalysis
        } else if has("ipc") || has_phrase("instructions per cycle") {
            // IPC questions read the metadata's scenario sentence: ranking
            // questions compare policies, direct questions are rate
            // lookups; without a workload slot there is nothing to cite.
            if (has("which") || has("compare") || has("rank") || has("highest") || has("best"))
                && (has("policy") || has("policies") || mentioned.len() >= 2)
            {
                QueryCategory::PolicyComparison
            } else if workload.is_some() {
                QueryCategory::MissRate
            } else {
                QueryCategory::Concepts
            }
        } else if (has("which") || has("compare") || has("rank") || has("order"))
            && (has("policy") || has("policies") || mentioned.len() >= 2)
        {
            QueryCategory::PolicyComparison
        } else if has("workload")
            && (has("highest") || has("lowest") || has("compare"))
            && pc.is_none()
        {
            QueryCategory::WorkloadAnalysis
        } else if has("why")
            && (has("assembly") || has("semantic") || has("function") || has("source"))
            || has_phrase("assembly context")
            || has_phrase("program behavior")
            || has_phrase("program behaviour")
        {
            QueryCategory::SemanticAnalysis
        } else if has("why") && (mentioned.len() >= 2 || has("outperform") || has("perform"))
            || has("outperform")
        {
            QueryCategory::PolicyAnalysis
        } else if has_phrase("miss rate") || has_phrase("hit rate") {
            if pc.is_none() && workload.is_none() {
                QueryCategory::Concepts
            } else {
                QueryCategory::MissRate
            }
        } else if has("hit") || has("miss") || has("evict") || has("evictions") {
            if pc.is_some() || address.is_some() {
                QueryCategory::HitMiss
            } else if workload.is_some() || !mentioned.is_empty() {
                QueryCategory::WorkloadAnalysis
            } else {
                QueryCategory::Concepts
            }
        } else if pc.is_some() || address.is_some() {
            QueryCategory::SemanticAnalysis
        } else {
            QueryCategory::Concepts
        };

        // "Best" means the *lowest* miss rate but the *highest* IPC — for
        // IPC questions only explicit minimum words ask for the bottom of
        // the ranking.
        let ipc_question = has("ipc") || has_phrase("instructions per cycle");
        let wants_minimum = has("lowest")
            || has("fewest")
            || has("least")
            || has("smallest")
            || (has("best") && !ipc_question);

        QueryIntent {
            category,
            pc,
            address,
            workload,
            policy: mentioned.first().cloned(),
            policies: mentioned,
            wants_minimum,
            selector,
            raw: question.to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORKLOADS: [&str; 3] = ["astar", "lbm", "mcf"];
    const POLICIES: [&str; 4] = ["belady", "lru", "mlp", "parrot"];

    fn parse(q: &str) -> QueryIntent {
        QueryIntent::parse(q, &WORKLOADS, &POLICIES)
    }

    #[test]
    fn hit_miss_with_full_tuple() {
        let i = parse(
            "Does the memory access with PC 0x401e31 and address 0x35e798a637f result in a \
             cache hit or miss for the lbm workload under PARROT?",
        );
        assert_eq!(i.category, QueryCategory::HitMiss);
        assert_eq!(i.pc, Some(Pc::new(0x401e31)));
        assert_eq!(i.address, Some(Address::new(0x35e798a637f)));
        assert_eq!(i.workload.as_deref(), Some("lbm"));
        assert_eq!(i.policy.as_deref(), Some("parrot"));
    }

    #[test]
    fn miss_rate_per_pc() {
        let i = parse("What is the miss rate for PC 0x4037ba in mcf with PARROT?");
        assert_eq!(i.category, QueryCategory::MissRate);
        assert_eq!(i.pc, Some(Pc::new(0x4037ba)));
    }

    #[test]
    fn policy_comparison() {
        let i = parse("Which policy has the lowest miss rate for PC 0x409270 in astar?");
        assert_eq!(i.category, QueryCategory::PolicyComparison);
        assert!(i.wants_minimum);
    }

    #[test]
    fn counting() {
        let i = parse("How many times did PC 0x405832 appear in astar under LRU?");
        assert_eq!(i.category, QueryCategory::Count);
        assert_eq!(i.policy.as_deref(), Some("lru"));
    }

    #[test]
    fn arithmetic() {
        let i = parse(
            "What is the average evicted reuse distance of PC 0x40170a for the lbm workload \
             with MLP?",
        );
        assert_eq!(i.category, QueryCategory::Arithmetic);
        assert_eq!(i.policy.as_deref(), Some("mlp"));
    }

    #[test]
    fn ipc_questions_classify_by_shape() {
        let i = parse("What is the estimated IPC for mcf under LRU?");
        assert_eq!(i.category, QueryCategory::MissRate);
        assert_eq!(i.workload.as_deref(), Some("mcf"));
        assert_eq!(i.policy.as_deref(), Some("lru"));

        let i = parse("Which policy gives the highest IPC on astar?");
        assert_eq!(i.category, QueryCategory::PolicyComparison);
        assert!(!i.wants_minimum);

        // "Best" is a minimum for miss rates but a maximum for IPC.
        let i = parse("Which policy is best for IPC on mcf?");
        assert_eq!(i.category, QueryCategory::PolicyComparison);
        assert!(!i.wants_minimum, "best IPC must rank descending");
        let i = parse("Which policy has the best miss rate for PC 0x409270 in astar?");
        assert!(i.wants_minimum);

        let i = parse("What does IPC stand for?");
        assert_eq!(i.category, QueryCategory::Concepts);
    }

    #[test]
    fn concepts_without_slots() {
        let i = parse("How does increasing cache size affect miss rate? Compare #sets vs #ways.");
        assert_eq!(i.category, QueryCategory::Concepts);
    }

    #[test]
    fn code_generation() {
        let i = parse(
            "Write code to compute hits for PC 0x4037ba and address 0xa3a0df3d9d in mcf under \
             LRU.",
        );
        assert_eq!(i.category, QueryCategory::CodeGen);
    }

    #[test]
    fn policy_analysis_why() {
        let i = parse("Why does Belady outperform LRU on PC 0x409270 in astar?");
        assert_eq!(i.category, QueryCategory::PolicyAnalysis);
        assert_eq!(i.policies, vec!["belady", "lru"]);
    }

    #[test]
    fn workload_analysis() {
        let i = parse("Which workload has the highest cache miss rate under MLP?");
        assert_eq!(i.category, QueryCategory::WorkloadAnalysis);
    }

    #[test]
    fn semantic_analysis() {
        let i = parse(
            "Why does PC 0x4037ba have a high hit rate? Examine the assembly context and \
             analyze.",
        );
        assert_eq!(i.category, QueryCategory::SemanticAnalysis);
    }

    #[test]
    fn address_only_hit_miss() {
        let i = parse("Does address 0x47ea85d37f hit in the cache on lbm under LRU?");
        assert_eq!(i.category, QueryCategory::HitMiss);
        assert_eq!(i.address, Some(Address::new(0x47ea85d37f)));
        assert_eq!(i.pc, None);
    }

    #[test]
    fn inline_machine_syntax_lands_in_the_selector() {
        let i = parse("What is the estimated IPC for mcf@table2 under LRU?");
        assert_eq!(i.category, QueryCategory::MissRate, "IPC lookup shape");
        assert_eq!(i.workload.as_deref(), Some("mcf"));
        assert_eq!(i.selector.machine.as_deref(), Some("table2"));
        assert_eq!(i.selector.workload.as_deref(), Some("mcf"));

        let i = parse("What is the miss rate of lbm @small under LRU?");
        assert_eq!(i.selector.machine.as_deref(), Some("small"));
        assert_eq!(i.workload.as_deref(), Some("lbm"));

        // Trailing punctuation is stripped before parsing the token.
        let i = parse("Which policy gives the highest IPC on astar@small?");
        assert_eq!(i.selector.machine.as_deref(), Some("small"));
        assert_eq!(i.category, QueryCategory::PolicyComparison);

        // Questions without the syntax carry the unscoped selector.
        let i = parse("What is the miss rate of mcf under LRU?");
        assert!(i.selector.is_unscoped());

        // Full canonical labels are accepted even without a preset name.
        let i = parse("What is the IPC for mcf@LLC-half@1024x16 under LRU?");
        assert_eq!(i.selector.machine.as_deref(), Some("LLC-half@1024x16"));
    }

    #[test]
    fn inline_prefetcher_syntax_lands_in_the_selector() {
        // A bare prefetcher token anchors a selector on its own.
        let i = parse("What is the estimated IPC for mcf +stride4 under LRU?");
        assert_eq!(i.selector.prefetcher.as_deref(), Some("stride4"));
        assert_eq!(i.selector.machine, None);
        assert_eq!(i.workload.as_deref(), Some("mcf"));

        // Workload-attached prefetcher tokens carry both slots.
        let i = parse("What is the estimated IPC for mcf+nextline under LRU?");
        assert_eq!(i.selector.prefetcher.as_deref(), Some("nextline"));
        assert_eq!(i.selector.workload.as_deref(), Some("mcf"));

        // The fully qualified form threads machine and prefetcher at once.
        let i = parse("What is the estimated IPC for astar@table2+stride4/lru?");
        assert_eq!(i.selector.machine.as_deref(), Some("table2"));
        assert_eq!(i.selector.prefetcher.as_deref(), Some("stride4"));
        assert_eq!(i.selector.policy.as_deref(), Some("lru"));
        assert_eq!(i.workload.as_deref(), Some("astar"));

        // Incidental '+' text is never adopted.
        for q in [
            "Why is C++ faster than Python for cache simulators?",
            "What is 2+2 in mcf under LRU?",
            "Does a+b alias in astar under LRU?",
        ] {
            let i = parse(q);
            assert!(i.selector.is_unscoped(), "{q:?} adopted {:?}", i.selector);
        }
    }

    #[test]
    fn incidental_at_tokens_are_not_adopted_as_selectors() {
        // Quoted emails, handles and paths must not scope retrieval to a
        // machine that cannot exist — the question keeps answering from
        // the primary machine.
        for q in [
            "Why does PC 0x409200 miss in astar? contact bob@example.com",
            "As @reviewer asked: what is the miss rate of mcf under LRU?",
            "What is the miss rate of unknownwl@table2 under LRU?",
        ] {
            let i = parse(q);
            assert!(i.selector.is_unscoped(), "{q:?} adopted {:?}", i.selector);
        }
        // ... while credible selector tokens still are adopted.
        let i = parse("What is the IPC for mcf@table2 under LRU?");
        assert_eq!(i.selector.machine.as_deref(), Some("table2"));
    }

    #[test]
    fn scoped_parse_fills_open_slots_before_classification() {
        use cachemind_sim::scenario::ScenarioSelector;
        let pinned = ScenarioSelector::all().with_workload("mcf").with_policy("lru");
        // Without scope: no workload slot, so an IPC question degrades to
        // Concepts. With a pinned session it classifies as a rate lookup.
        let bare = parse("What is the estimated IPC?");
        assert_eq!(bare.category, QueryCategory::Concepts);
        let scoped =
            QueryIntent::parse_scoped("What is the estimated IPC?", &WORKLOADS, &POLICIES, &pinned);
        assert_eq!(scoped.category, QueryCategory::MissRate);
        assert_eq!(scoped.workload.as_deref(), Some("mcf"));
        assert_eq!(scoped.policy.as_deref(), Some("lru"));

        // Slots the question pins stay the question's: inline text wins.
        let scoped = QueryIntent::parse_scoped(
            "What is the estimated IPC for lbm under belady?",
            &WORKLOADS,
            &POLICIES,
            &pinned,
        );
        assert_eq!(scoped.workload.as_deref(), Some("lbm"));
        assert_eq!(scoped.policy.as_deref(), Some("belady"));

        // A pinned name outside the vocabulary is ignored.
        let alien = ScenarioSelector::all().with_workload("spectre");
        let scoped = QueryIntent::parse_scoped("miss rate?", &WORKLOADS, &POLICIES, &alien);
        assert_eq!(scoped.workload, None);

        // The unscoped selector reproduces plain parse exactly.
        let q = "Which policy has the lowest miss rate for PC 0x409270 in astar?";
        let a = parse(q);
        let b = QueryIntent::parse_scoped(q, &WORKLOADS, &POLICIES, &ScenarioSelector::all());
        assert_eq!(a, b);
    }

    #[test]
    fn inline_selector_wins_over_session_scope_per_field() {
        use cachemind_sim::scenario::ScenarioSelector;
        let pinned = ScenarioSelector::all().with_machine("table2").with_policy("lru");
        let i = QueryIntent::parse_scoped(
            "What is the estimated IPC for mcf@small?",
            &WORKLOADS,
            &POLICIES,
            &pinned,
        );
        assert_eq!(i.selector.machine.as_deref(), Some("small"), "inline machine wins");
        assert_eq!(i.selector.policy.as_deref(), Some("lru"), "pinned policy fills the gap");
        assert_eq!(i.policy.as_deref(), Some("lru"));
    }

    #[test]
    fn tier_assignment_matches_table1() {
        assert_eq!(QueryCategory::Count.tier(), Tier::TraceGrounded);
        assert_eq!(QueryCategory::CodeGen.tier(), Tier::Reasoning);
        assert_eq!(QueryCategory::ALL.len(), 11);
        let tg = QueryCategory::ALL.iter().filter(|c| c.tier() == Tier::TraceGrounded).count();
        assert_eq!(tg, 6);
    }
}
