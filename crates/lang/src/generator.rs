//! The generator: a grounded reasoner wrapped in a backend capability model.
//!
//! The reasoner half is fully deterministic: it computes the ideal answer
//! *from the retrieved facts only* (never from global knowledge), so answer
//! quality is causally downstream of retrieval quality. The capability half
//! perturbs that ideal answer according to the backend's per-category
//! competence ([`crate::profiles`]), with seeded, reproducible draws.

use serde::{Deserialize, Serialize};

use crate::context::{ContextQuality, Fact, RetrievedContext};
use crate::intent::{QueryCategory, QueryIntent};
use crate::profiles::{text_seed, unit_draw, BackendKind};
use crate::prompt::Example;

/// A machine-checkable answer verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// Hit/miss classification; `true` = miss.
    HitMiss(bool),
    /// A numeric answer (rate, count, mean, ...).
    Number(f64),
    /// A ranking of names (best first).
    Ranking(Vec<String>),
    /// The premise was rejected (trick questions).
    Trick,
    /// The generator admitted it could not answer from the context.
    NotFound,
    /// A free-form analysis; `quality` is the 0–5 rubric-equivalent grade
    /// the evaluation harness assigns (see EXPERIMENTS.md on scoring).
    FreeForm {
        /// Rubric grade 0..=5.
        quality: u8,
    },
}

/// A full generator response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorAnswer {
    /// Natural-language answer text.
    pub text: String,
    /// The checkable verdict.
    pub verdict: Verdict,
}

/// Everything the generator sees for one question.
#[derive(Debug, Clone)]
pub struct GeneratorRequest {
    /// The raw question.
    pub question: String,
    /// The parsed intent.
    pub intent: QueryIntent,
    /// The retrieved context bundle.
    pub context: RetrievedContext,
    /// K-shot examples (empty for zero-shot).
    pub examples: Vec<Example>,
}

/// A generator backend.
pub trait Generator {
    /// Stable backend label.
    fn name(&self) -> &'static str;

    /// Produces an answer for the request.
    fn answer(&self, request: &GeneratorRequest) -> GeneratorAnswer;
}

/// The simulated backend: grounded reasoning + calibrated noise.
#[derive(Debug, Clone)]
pub struct SimulatedBackend {
    kind: BackendKind,
    run_seed: u64,
}

impl SimulatedBackend {
    /// Creates a backend of the given kind with the default run seed.
    pub fn new(kind: BackendKind) -> Self {
        SimulatedBackend { kind, run_seed: 0xCAC4E }
    }

    /// Overrides the run seed (for sensitivity studies).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.run_seed = seed;
        self
    }

    /// The backend kind.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    fn draw(&self, question: &str, salt: u64) -> f64 {
        unit_draw(&[self.run_seed, self.kind.seed(), text_seed(question), salt])
    }

    /// Computes the ideal verdict from the retrieved facts, if they suffice.
    fn ground(&self, request: &GeneratorRequest) -> Option<Verdict> {
        let ctx = &request.context;
        if ctx.premise_violation().is_some() {
            return Some(Verdict::Trick);
        }
        match request.intent.category {
            QueryCategory::HitMiss => ctx.facts.iter().find_map(|f| match f {
                Fact::Outcome { is_miss, .. } => Some(Verdict::HitMiss(*is_miss)),
                _ => None,
            }),
            QueryCategory::MissRate => ctx.facts.iter().find_map(|f| match f {
                Fact::MissRate { percent, .. } => Some(Verdict::Number(*percent)),
                // IPC lookups ride the MissRate category (both are
                // whole-trace rate questions over the metadata string) but
                // surface as numeric facts.
                Fact::NumericValue { value, .. } => Some(Verdict::Number(*value)),
                _ => None,
            }),
            QueryCategory::PolicyComparison => {
                let mut values: Vec<(String, f64)> = ctx
                    .facts
                    .iter()
                    .filter_map(|f| match f {
                        Fact::PolicyValue { policy, value, .. } => Some((policy.clone(), *value)),
                        _ => None,
                    })
                    .collect();
                if values.is_empty() {
                    return None;
                }
                if request.intent.wants_minimum {
                    values.sort_by(|a, b| a.1.total_cmp(&b.1));
                } else {
                    values.sort_by(|a, b| b.1.total_cmp(&a.1));
                }
                Some(Verdict::Ranking(values.into_iter().map(|(p, _)| p).collect()))
            }
            QueryCategory::Count => ctx.facts.iter().find_map(|f| match f {
                // An incomplete count is still *an* answer — just a wrong
                // one. The paper: "a single ... failure to iterate the
                // entire slice yields an incorrect result".
                Fact::CountValue { value, .. } => Some(Verdict::Number(*value as f64)),
                _ => None,
            }),
            QueryCategory::Arithmetic => ctx.facts.iter().find_map(|f| match f {
                Fact::NumericValue { value, .. } => Some(Verdict::Number(*value)),
                _ => None,
            }),
            // Reasoning-tier categories produce free-form analyses whenever
            // any evidence is present.
            QueryCategory::Trick => None,
            _ => (!ctx.facts.is_empty() || request.intent.category == QueryCategory::Concepts)
                .then_some(Verdict::FreeForm { quality: 5 }),
        }
    }

    /// Trick competence including the few-shot boost the paper observed
    /// ("the given examples help the generator identify and assess trick
    /// questions better than zero-shot prompting").
    fn trick_competence(&self, shots: usize) -> f64 {
        let base = self.kind.competence(QueryCategory::Trick);
        if shots > 0 {
            (base + 0.15).min(1.0)
        } else {
            base
        }
    }

    fn corrupt(&self, ideal: &Verdict, request: &GeneratorRequest) -> Verdict {
        let q = &request.question;
        match ideal {
            Verdict::HitMiss(m) => Verdict::HitMiss(!m),
            Verdict::Number(v) => {
                // Characteristic numeric error: wrong slice / dropped filter.
                let factor = 0.5 + self.draw(q, 0xE11) * 1.2;
                Verdict::Number((v * factor * 100.0).round() / 100.0 + 1.0)
            }
            Verdict::Ranking(names) => {
                let mut swapped = names.clone();
                if swapped.len() >= 2 {
                    swapped.swap(0, 1);
                }
                Verdict::Ranking(swapped)
            }
            Verdict::Trick => {
                // Failing a trick question = accepting the premise.
                Verdict::HitMiss(self.draw(q, 0x7121) < 0.5)
            }
            Verdict::FreeForm { .. } | Verdict::NotFound => Verdict::FreeForm { quality: 1 },
        }
    }

    fn freeform_quality(&self, request: &GeneratorRequest) -> u8 {
        let p = self.kind.competence(request.intent.category);
        let roll = self.draw(&request.question, 0xF0F0);
        // Context degradation: thin evidence caps the achievable grade.
        let cap = match request.context.quality {
            ContextQuality::High => 5.0,
            ContextQuality::Medium => 4.0,
            ContextQuality::Low => 2.0,
        };
        if self.kind.bimodal_scores() {
            // o3: all-or-nothing (Fig. 7).
            return if roll < p { cap as u8 } else { u8::from(roll < p + 0.2) };
        }
        // Expected score = 5p, spread by the roll.
        let base = 5.0 * p;
        let jitter = (roll - 0.5) * 2.0; // [-1, 1]
        (base + jitter).clamp(0.0, cap).round() as u8
    }

    fn render_text(&self, verdict: &Verdict, request: &GeneratorRequest) -> String {
        let evidence = request.context.render();
        match verdict {
            Verdict::HitMiss(true) => "Cache Miss".to_owned(),
            Verdict::HitMiss(false) => "Cache Hit".to_owned(),
            Verdict::Number(v) => format!("The answer is {v:.2}."),
            Verdict::Ranking(names) => format!("Ranking: {}.", names.join(" > ")),
            Verdict::Trick => format!(
                "TRICK — the question's premise is inconsistent with the trace: {}",
                request.context.premise_violation().unwrap_or("no matching records exist")
            ),
            Verdict::NotFound => {
                "I could not find matching records in the retrieved context; the question \
                 cannot be answered from this evidence."
                    .to_owned()
            }
            Verdict::FreeForm { quality } => format!(
                "Analysis (grounded in retrieved evidence):\n{}\n[rubric-equivalent grade: {quality}/5]",
                if evidence.is_empty() { "(no evidence retrieved)" } else { &evidence }
            ),
        }
    }
}

impl Generator for SimulatedBackend {
    fn name(&self) -> &'static str {
        self.kind.label()
    }

    fn answer(&self, request: &GeneratorRequest) -> GeneratorAnswer {
        let category = request.intent.category;
        let ideal = self.ground(request);

        let verdict = match ideal {
            Some(Verdict::Trick) => {
                // Epistemic robustness: reject or hallucinate.
                if self.draw(&request.question, 0x7110)
                    < self.trick_competence(request.examples.len())
                {
                    Verdict::Trick
                } else {
                    self.corrupt(&Verdict::Trick, request)
                }
            }
            Some(Verdict::FreeForm { .. }) => {
                Verdict::FreeForm { quality: self.freeform_quality(request) }
            }
            Some(ideal) => {
                let p = self.kind.competence(category);
                if self.draw(&request.question, 0xC0DE) < p {
                    ideal
                } else {
                    self.corrupt(&ideal, request)
                }
            }
            None => {
                // Insufficient context.
                if !request.examples.is_empty() && self.kind.copies_example_context() {
                    // The paper's few-shot failure: the backend answers from
                    // the example's context instead of admitting ignorance.
                    GeneratorAnswer {
                        text: format!(
                            "{} (from example context)",
                            request.examples[0].answer.clone()
                        ),
                        verdict: Verdict::HitMiss(request.examples[0].answer.contains("Miss")),
                    }
                    .verdict
                } else if self.kind.admits_missing_context() {
                    Verdict::NotFound
                } else {
                    // Hallucinate something category-shaped.
                    match category {
                        QueryCategory::HitMiss => {
                            Verdict::HitMiss(self.draw(&request.question, 0xBAD) < 0.5)
                        }
                        QueryCategory::MissRate
                        | QueryCategory::Count
                        | QueryCategory::Arithmetic => {
                            Verdict::Number((self.draw(&request.question, 0xBAD) * 100.0).round())
                        }
                        QueryCategory::PolicyComparison => {
                            Verdict::Ranking(request.intent.policies.clone())
                        }
                        _ => Verdict::FreeForm { quality: 1 },
                    }
                }
            }
        };

        let text = self.render_text(&verdict, request);
        GeneratorAnswer { text, verdict }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachemind_sim::addr::{Address, Pc};

    const WORKLOADS: [&str; 3] = ["astar", "lbm", "mcf"];
    const POLICIES: [&str; 4] = ["belady", "lru", "mlp", "parrot"];

    fn hitmiss_request(quality: ContextQuality, facts: Vec<Fact>) -> GeneratorRequest {
        let q = "Does PC 0x401dc9 and address 0x47ea85d37f hit in lbm under LRU?";
        GeneratorRequest {
            question: q.to_owned(),
            intent: QueryIntent::parse(q, &WORKLOADS, &POLICIES),
            context: RetrievedContext { facts, quality, retriever: "test".into() },
            examples: Vec::new(),
        }
    }

    fn outcome_fact(is_miss: bool) -> Fact {
        Fact::Outcome {
            pc: Some(Pc::new(0x401dc9)),
            address: Some(Address::new(0x47ea85d37f)),
            workload: "lbm".into(),
            policy: "lru".into(),
            is_miss,
            evicted: None,
            inserted_reuse: None,
        }
    }

    #[test]
    fn grounded_hitmiss_is_mostly_correct() {
        // Across many question variants the accuracy should be close to the
        // backend's competence.
        let mut backend = SimulatedBackend::new(BackendKind::Gpt4o);
        let mut correct = 0;
        let n = 500;
        for i in 0..n {
            let q = format!("Does PC 0x401dc9 and address {i:#x} hit in lbm under LRU?");
            let req = GeneratorRequest {
                question: q.clone(),
                intent: QueryIntent::parse(&q, &WORKLOADS, &POLICIES),
                context: RetrievedContext {
                    facts: vec![outcome_fact(true)],
                    quality: ContextQuality::High,
                    retriever: "test".into(),
                },
                examples: Vec::new(),
            };
            if backend.answer(&req).verdict == Verdict::HitMiss(true) {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!((acc - 0.833).abs() < 0.07, "accuracy {acc}");
    }

    #[test]
    fn premise_violation_triggers_trick_handling() {
        let mut robust = SimulatedBackend::new(BackendKind::Gpt4o);
        let mut fragile = SimulatedBackend::new(BackendKind::Gpt35Turbo);
        let mut req = hitmiss_request(ContextQuality::High, Vec::new());
        req.context
            .facts
            .push(Fact::PremiseViolation { reason: "PC 0x4037aa appears only in mcf".into() });
        // GPT-3.5 has 0% trick competence: always accepts the premise.
        assert_ne!(fragile.answer(&req).verdict, Verdict::Trick);
        // GPT-4o rejects 80% of the time; check over many salts.
        let mut rejections = 0;
        for i in 0..200 {
            let mut r = req.clone();
            r.question = format!("{} variant {i}", req.question);
            if robust.answer(&r).verdict == Verdict::Trick {
                rejections += 1;
            }
        }
        assert!(rejections > 120, "rejections {rejections}");
    }

    #[test]
    fn missing_context_honesty_depends_on_backend() {
        let mut honest = SimulatedBackend::new(BackendKind::Gpt4o);
        let mut liar = SimulatedBackend::new(BackendKind::O3);
        let req = hitmiss_request(ContextQuality::Low, Vec::new());
        assert_eq!(honest.answer(&req).verdict, Verdict::NotFound);
        assert_ne!(liar.answer(&req).verdict, Verdict::NotFound);
    }

    #[test]
    fn example_context_bleed_for_weak_backends() {
        let mut backend = SimulatedBackend::new(BackendKind::Gpt35Turbo);
        let mut req = hitmiss_request(ContextQuality::Low, Vec::new());
        req.examples.push(Example::figure6());
        let a = backend.answer(&req);
        // The Figure 6 example answer is "Cache Miss"; the model parrots it.
        assert_eq!(a.verdict, Verdict::HitMiss(true));
    }

    #[test]
    fn freeform_quality_capped_by_context() {
        let mut backend = SimulatedBackend::new(BackendKind::Gpt4o);
        let q = "Why does Belady outperform LRU on PC 0x409270 in astar?";
        let mut max_low = 0u8;
        for i in 0..50 {
            let question = format!("{q} v{i}");
            let req = GeneratorRequest {
                question: question.clone(),
                intent: QueryIntent::parse(&question, &WORKLOADS, &POLICIES),
                context: RetrievedContext {
                    facts: vec![Fact::Snippet { title: "x".into(), text: "y".into() }],
                    quality: ContextQuality::Low,
                    retriever: "test".into(),
                },
                examples: Vec::new(),
            };
            if let Verdict::FreeForm { quality } = backend.answer(&req).verdict {
                max_low = max_low.max(quality);
            }
        }
        assert!(max_low <= 2, "low-quality context must cap rubric at 2, saw {max_low}");
    }

    #[test]
    fn answers_are_deterministic() {
        let mut a = SimulatedBackend::new(BackendKind::Gpt4oMini);
        let mut b = SimulatedBackend::new(BackendKind::Gpt4oMini);
        let req = hitmiss_request(ContextQuality::High, vec![outcome_fact(false)]);
        assert_eq!(a.answer(&req), b.answer(&req));
    }
}
